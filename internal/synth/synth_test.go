package synth

import (
	"math"
	"math/rand"
	"testing"

	"geoalign/internal/geom"
)

var b100 = geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}

func TestMixtureFieldBounds(t *testing.T) {
	f := &MixtureField{
		Centers: []GaussianCenter{{At: geom.Point{X: 50, Y: 50}, Weight: 10, Sigma: 5}},
		Base:    1,
	}
	peak := f.Intensity(geom.Point{X: 50, Y: 50})
	if math.Abs(peak-11) > 1e-12 {
		t.Errorf("peak = %v, want 11", peak)
	}
	far := f.Intensity(geom.Point{X: 0, Y: 0})
	if far < 1 || far > 1.01 {
		t.Errorf("far intensity = %v, want ≈ base", far)
	}
	if f.MaxIntensity() < peak {
		t.Error("MaxIntensity below actual peak")
	}
}

func TestUniformAndInverseFields(t *testing.T) {
	u := UniformField{Level: 2}
	if u.Intensity(geom.Point{}) != 2 || u.MaxIntensity() != 2 {
		t.Error("uniform field wrong")
	}
	inv := InverseField{Of: u, Scale: 6}
	if got := inv.Intensity(geom.Point{}); got != 2 {
		t.Errorf("inverse intensity = %v, want 2", got)
	}
	if inv.MaxIntensity() < inv.Intensity(geom.Point{}) {
		t.Error("inverse MaxIntensity below value")
	}
}

func TestBlendField(t *testing.T) {
	f := &BlendField{
		Parts:  []Field{UniformField{Level: 1}, UniformField{Level: 10}},
		Coeffs: []float64{2, 0.5},
		Extra:  1,
	}
	if got := f.Intensity(geom.Point{}); got != 8 {
		t.Errorf("blend = %v, want 8", got)
	}
	if f.MaxIntensity() != 8 {
		t.Errorf("blend max = %v", f.MaxIntensity())
	}
}

func TestSamplePointsFollowsField(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := &MixtureField{
		Centers: []GaussianCenter{{At: geom.Point{X: 25, Y: 25}, Weight: 50, Sigma: 8}},
		Base:    0.1,
	}
	pts := SamplePoints(rng, f, b100, 4000)
	if len(pts) != 4000 {
		t.Fatalf("points = %d", len(pts))
	}
	nearCentre := 0
	for _, p := range pts {
		if !b100.ContainsPoint(p) {
			t.Fatalf("point %v outside bounds", p)
		}
		if p.Dist(geom.Point{X: 25, Y: 25}) < 20 {
			nearCentre++
		}
	}
	// The Gaussian holds most of the mass; uniform sampling would put
	// ~12.6% inside radius 20.
	if frac := float64(nearCentre) / 4000; frac < 0.5 {
		t.Errorf("only %.0f%% of points near the centre; field not respected", frac*100)
	}
}

func TestRandomCentersAndHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cs := RandomCenters(rng, 12, b100)
	// Each metro expands into a core plus satellite blocks.
	if len(cs) < 12 || len(cs)%12 != 0 {
		t.Fatalf("centers = %d, want a multiple of 12", len(cs))
	}
	for _, c := range cs {
		if c.Sigma <= 0 || c.Weight < 0 {
			t.Fatalf("bad center %+v", c)
		}
	}
	top := TopCenters(cs, 3)
	if len(top) != 3 {
		t.Fatalf("top = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Weight > top[i-1].Weight {
			t.Error("TopCenters not sorted by weight")
		}
	}
	tight := Tighten(cs, 0.5)
	for i := range tight {
		if math.Abs(tight[i].Sigma-cs[i].Sigma*0.5) > 1e-12 {
			t.Error("Tighten wrong")
		}
	}
	if got := TopCenters(cs, 9999); len(got) != len(cs) {
		t.Errorf("TopCenters over-ask = %d, want %d", len(got), len(cs))
	}
}

func TestBuildUniverseDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, SourceUnits: 50, TargetUnits: 6, Centers: 4}
	u1, err := BuildUniverse("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := BuildUniverse("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range u1.SourceDiagram.Seeds {
		if u1.SourceDiagram.Seeds[i] != u2.SourceDiagram.Seeds[i] {
			t.Fatal("universe generation not deterministic")
		}
	}
	if u1.Source.Len() != 50 || u1.Target.Len() != 6 {
		t.Errorf("unit counts %d/%d", u1.Source.Len(), u1.Target.Len())
	}
}

func TestPointDatasetConsistency(t *testing.T) {
	u, err := BuildUniverse("t", Config{Seed: 9, SourceUnits: 40, TargetUnits: 5, Centers: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := &MixtureField{Centers: u.Centers, Base: 0.5}
	d := u.PointDataset("pop", f, 2000)
	if d.Points != 2000 {
		t.Errorf("Points = %d", d.Points)
	}
	// Source aggregates = DM row sums, target = column sums, and the
	// total mass is the point count (no point is dropped: fields sample
	// inside bounds and Voronoi covers the bounds).
	var total float64
	for _, v := range d.Source {
		total += v
	}
	if total != 2000 {
		t.Errorf("source total = %v, want 2000", total)
	}
	total = 0
	for _, v := range d.Target {
		total += v
	}
	if total != 2000 {
		t.Errorf("target total = %v, want 2000", total)
	}
}

func TestAreaDataset(t *testing.T) {
	u, err := BuildUniverse("t", Config{Seed: 4, SourceUnits: 30, TargetUnits: 4, Centers: 3})
	if err != nil {
		t.Fatal(err)
	}
	d, err := u.AreaDataset()
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range d.Source {
		total += v
	}
	want := u.Bounds.Area()
	if math.Abs(total-want) > 1e-5*want {
		t.Errorf("area total = %v, want %v", total, want)
	}
}

func TestBuildCatalogNY(t *testing.T) {
	u, err := BuildUniverse("NY", NYConfig(3, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	cat, err := BuildCatalog(NewYork, u, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Datasets) != 8 {
		t.Fatalf("NY catalog has %d datasets, want 8", len(cat.Datasets))
	}
	names := cat.DatasetNames()
	wantNames := map[string]bool{
		"Attorney Registration": true, "Population": true,
		"USPS Business Address": true, "USPS Residential Address": true,
	}
	for _, n := range names {
		delete(wantNames, n)
	}
	if len(wantNames) != 0 {
		t.Errorf("missing datasets: %v (have %v)", wantNames, names)
	}
	if cat.ByName("Population") == nil {
		t.Error("ByName failed")
	}
	if cat.ByName("nope") != nil {
		t.Error("ByName found a ghost")
	}
}

func TestBuildCatalogUS(t *testing.T) {
	u, err := BuildUniverse("US", USConfig(3, 0.003))
	if err != nil {
		t.Fatal(err)
	}
	cat, err := BuildCatalog(UnitedStates, u, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Datasets) != 10 {
		t.Fatalf("US catalog has %d datasets, want 10", len(cat.Datasets))
	}
	if cat.ByName("Area (Sq. Miles)") == nil {
		t.Error("Area dataset missing")
	}
	if cat.ByName("USA Uninhabited Places") == nil {
		t.Error("Uninhabited dataset missing")
	}
}

func TestBuildCatalogValidation(t *testing.T) {
	u, _ := BuildUniverse("t", Config{Seed: 1, SourceUnits: 30, TargetUnits: 4})
	if _, err := BuildCatalog(NewYork, u, 10); err == nil {
		t.Error("tiny budget accepted")
	}
	if _, err := BuildCatalog(CatalogKind(99), u, 1000); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestEngineeredCorrelations(t *testing.T) {
	// The USPS residential and business fields must be highly correlated
	// at source level (the paper reports ≈96%), and uninhabited places
	// anti-correlated with population.
	u, err := BuildUniverse("US", USConfig(11, 0.005))
	if err != nil {
		t.Fatal(err)
	}
	cat, err := BuildCatalog(UnitedStates, u, 20000)
	if err != nil {
		t.Fatal(err)
	}
	res := cat.ByName("USPS Residential Address")
	bus := cat.ByName("USPS Business Address")
	pop := cat.ByName("Population")
	if r := pearson(res.Source, bus.Source); r < 0.85 {
		t.Errorf("residential-business correlation = %.3f, want > 0.85", r)
	}
	if r := pearson(pop.Source, res.Source); r < 0.85 {
		t.Errorf("population-residential correlation = %.3f, want > 0.85", r)
	}
	un := cat.ByName("USA Uninhabited Places")
	if r := pearson(pop.Source, un.Source); r > 0.35 {
		t.Errorf("population-uninhabited correlation = %.3f, want low/negative", r)
	}
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

func TestSyntheticDMStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dm := SyntheticDM(rng, 500, 40)
	if dm.Rows != 500 || dm.Cols != 40 {
		t.Fatalf("dims %dx%d", dm.Rows, dm.Cols)
	}
	rows := dm.RowSums()
	for i, s := range rows {
		if s <= 0 {
			t.Fatalf("row %d empty", i)
		}
	}
	// Sparsity: at most 3 entries per row.
	for i := 0; i < dm.Rows; i++ {
		cols, _ := dm.Row(i)
		if len(cols) > 3 {
			t.Fatalf("row %d has %d entries", i, len(cols))
		}
	}
}

func TestScalingProblemRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := ScalingProblem(rng, 800, 60, 4)
	if len(p.Objective) != 800 || len(p.References) != 4 {
		t.Fatalf("problem malformed")
	}
}

func TestScalingUniverses(t *testing.T) {
	cfgs := ScalingUniverses(0.01)
	names := ScalingUniverseNames()
	if len(cfgs) != 6 || len(names) != 6 {
		t.Fatalf("want 6 universes, got %d/%d", len(cfgs), len(names))
	}
	for i := 1; i < len(cfgs); i++ {
		if cfgs[i].SourceUnits < cfgs[i-1].SourceUnits {
			t.Error("source units not increasing across hierarchy")
		}
	}
}

func TestBuild1DCatalog(t *testing.T) {
	cat, err := Build1DCatalog(3, 20, nil, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Datasets) != 6 {
		t.Fatalf("datasets = %d", len(cat.Datasets))
	}
	if cat.Source.Len() != 20 || cat.Target.Len() != 5 {
		t.Fatalf("bins %d/%d", cat.Source.Len(), cat.Target.Len())
	}
	for _, d := range cat.Datasets {
		var src, tgt float64
		for _, v := range d.Source {
			src += v
		}
		for _, v := range d.Target {
			tgt += v
		}
		if src != tgt {
			t.Errorf("%s: source mass %v != target mass %v", d.Name, src, tgt)
		}
		if src == 0 {
			t.Errorf("%s: empty dataset", d.Name)
		}
	}
	// School enrollment is concentrated in the youngest wide bin.
	school := cat.Datasets[1]
	var total float64
	for _, v := range school.Target {
		total += v
	}
	if school.Target[0] < 0.7*total {
		t.Errorf("school enrollment in first bin = %v of %v, want dominant", school.Target[0], total)
	}
}

func TestBuild1DCatalogValidation(t *testing.T) {
	if _, err := Build1DCatalog(1, 1, nil, 1000); err == nil {
		t.Error("1 narrow bin accepted")
	}
	if _, err := Build1DCatalog(1, 20, nil, 10); err == nil {
		t.Error("tiny budget accepted")
	}
	if _, err := Build1DCatalog(1, 20, []float64{0, 0}, 1000); err == nil {
		t.Error("bad wide breaks accepted")
	}
}
