package synth

import (
	"math"
	"testing"

	"geoalign/internal/geom"
)

// TestTigerLayerPartition checks the streamed lattice is an exact
// partition of the bounds: every polygon is simple (triangulable) with
// positive area, and the areas sum to the universe rectangle because
// neighbouring cells share their jittered boundaries.
func TestTigerLayerPartition(t *testing.T) {
	cfg := TigerConfig{Units: 400, Seed: 7}
	var total float64
	var count int
	err := TigerLayer(cfg, func(i int, name string, parts geom.MultiPolygon) error {
		if i != count {
			t.Fatalf("emit index %d, want %d", i, count)
		}
		if len(parts) != 1 {
			t.Fatalf("unit %d has %d parts", i, len(parts))
		}
		pg := parts[0]
		a := pg.Area()
		if a <= 0 {
			t.Fatalf("unit %d area %v", i, a)
		}
		if _, err := geom.NewPreparedPolygon(pg).Triangles(); err != nil {
			t.Fatalf("unit %d not simple: %v", i, err)
		}
		total += a
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count < cfg.Units {
		t.Fatalf("emitted %d units, want ≥ %d", count, cfg.Units)
	}
	if math.Abs(total-100*100) > 1e-6 {
		t.Fatalf("areas sum to %v, want 10000 (not a partition)", total)
	}
}

// TestTigerLayerDeterminism pins re-scan stability: two runs with the
// same config yield bit-identical sequences (required for the tiled
// build's two passes), and a different seed yields a different layer.
func TestTigerLayerDeterminism(t *testing.T) {
	collect := func(seed int64) []geom.MultiPolygon {
		var out []geom.MultiPolygon
		err := TigerLayer(TigerConfig{Units: 60, Seed: seed}, func(i int, name string, parts geom.MultiPolygon) error {
			out = append(out, parts)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(3), collect(3)
	if len(a) != len(b) {
		t.Fatalf("%d vs %d units", len(a), len(b))
	}
	for i := range a {
		for k := range a[i][0] {
			if a[i][0][k] != b[i][0][k] {
				t.Fatalf("unit %d vertex %d differs across runs", i, k)
			}
		}
	}
	c := collect(4)
	same := true
	for i := range a {
		for k := range a[i][0] {
			if a[i][0][k] != c[i][0][k] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seeds 3 and 4 produced identical layers")
	}
}

// TestTigerLayerAbort checks emit errors propagate immediately.
func TestTigerLayerAbort(t *testing.T) {
	want := errSentinel("stop")
	calls := 0
	err := TigerLayer(TigerConfig{Units: 100, Seed: 1}, func(i int, name string, parts geom.MultiPolygon) error {
		calls++
		if i == 3 {
			return want
		}
		return nil
	})
	if err != want {
		t.Fatalf("err = %v", err)
	}
	if calls != 4 {
		t.Fatalf("emit called %d times, want 4", calls)
	}
}

type errSentinel string

func (e errSentinel) Error() string { return string(e) }
