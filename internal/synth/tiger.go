package synth

import (
	"fmt"
	"math"

	"geoalign/internal/geom"
)

// TigerConfig sizes a streamed TIGER-like layer: a jittered lattice of
// irregular octagonal "tract" polygons covering Bounds. Unlike the
// Voronoi universes, the layer is never materialized — units are
// generated one at a time in row-major order, so 10⁵–10⁶-unit layers
// cost O(1) memory. All jitter is derived by hashing lattice
// coordinates with the seed, and jitter on a shared corner or edge is
// keyed on the corner/edge identity, so neighbouring cells agree on
// their common boundary: the emitted polygons partition Bounds exactly
// (shared edges, disjoint interiors) while every individual boundary is
// irregular.
type TigerConfig struct {
	Units  int       // approximate unit count; rounded to a cols×rows lattice
	Seed   int64     // generation seed; same seed ⇒ same layer
	Bounds geom.BBox // universe rectangle; zero value ⇒ 0..100 square
}

func (c TigerConfig) withTigerDefaults() TigerConfig {
	if c.Bounds.IsEmpty() || c.Bounds == (geom.BBox{}) {
		c.Bounds = geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	}
	if c.Units <= 0 {
		c.Units = 100
	}
	return c
}

// tigerGrid picks the lattice dimensions closest to cfg.Units while
// following the bounds aspect ratio.
func tigerGrid(cfg TigerConfig) (cols, rows int) {
	w := cfg.Bounds.MaxX - cfg.Bounds.MinX
	h := cfg.Bounds.MaxY - cfg.Bounds.MinY
	aspect := 1.0
	if w > 0 && h > 0 {
		aspect = w / h
	}
	cols = int(math.Round(math.Sqrt(float64(cfg.Units) * aspect)))
	if cols < 1 {
		cols = 1
	}
	rows = (cfg.Units + cols - 1) / cols
	if rows < 1 {
		rows = 1
	}
	return cols, rows
}

// splitmix64 is the finalizer from the SplitMix64 generator — a cheap,
// well-mixed 64-bit hash used to derive all lattice jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// latticeHash folds the seed and up to three lattice coordinates into a
// jitter value in [-1, 1).
func latticeHash(seed int64, kind uint64, a, b int) float64 {
	h := splitmix64(uint64(seed))
	h = splitmix64(h ^ kind<<56 ^ uint64(uint32(a)))
	h = splitmix64(h ^ uint64(uint32(b)))
	return float64(h>>11)/float64(1<<53)*2 - 1
}

// Jitter amplitudes as fractions of the cell size. Corners stay within
// ±0.22 of their lattice position and edge midpoints bow ±0.15
// perpendicular to the edge — small enough that every octagon stays
// simple (each vertex keeps a distinct angular sector around the cell
// centre), large enough that no edge is axis-aligned.
const (
	tigerCornerJitter = 0.22
	tigerEdgeJitter   = 0.15
)

// TigerLayer streams the layer: emit is called once per unit, in
// row-major lattice order, with the unit index, a GEOID-like name, and
// a freshly allocated single-part polygon the callee owns. Returning an
// error from emit aborts the generation and returns that error.
//
// Calling TigerLayer twice with the same config yields the identical
// sequence, which is what makes it usable as a partition.TileStream
// source (sizing pass + bucketing pass).
func TigerLayer(cfg TigerConfig, emit func(i int, name string, parts geom.MultiPolygon) error) error {
	cfg = cfg.withTigerDefaults()
	cols, rows := tigerGrid(cfg)
	cellW := (cfg.Bounds.MaxX - cfg.Bounds.MinX) / float64(cols)
	cellH := (cfg.Bounds.MaxY - cfg.Bounds.MinY) / float64(rows)
	if cellW <= 0 || cellH <= 0 {
		return fmt.Errorf("synth: degenerate tiger bounds %+v", cfg.Bounds)
	}

	// corner returns the jittered position of lattice corner (cx, cy).
	// Boundary corners are pinned to the bounds so the union is exactly
	// the configured rectangle.
	corner := func(cx, cy int) geom.Point {
		p := geom.Point{
			X: cfg.Bounds.MinX + float64(cx)*cellW,
			Y: cfg.Bounds.MinY + float64(cy)*cellH,
		}
		if cx > 0 && cx < cols {
			p.X += tigerCornerJitter * cellW * latticeHash(cfg.Seed, 'x', cx, cy)
		}
		if cy > 0 && cy < rows {
			p.Y += tigerCornerJitter * cellH * latticeHash(cfg.Seed, 'y', cx, cy)
		}
		return p
	}
	// hMid / vMid return the bowed midpoint of the horizontal edge
	// below lattice row ey (between corners (ex,ey) and (ex+1,ey)) and
	// of the vertical edge left of column ex. Interior edges bow
	// perpendicular; boundary edges stay straight.
	hMid := func(ex, ey int) geom.Point {
		a, b := corner(ex, ey), corner(ex+1, ey)
		p := geom.Point{X: (a.X + b.X) / 2, Y: (a.Y + b.Y) / 2}
		if ey > 0 && ey < rows {
			p.Y += tigerEdgeJitter * cellH * latticeHash(cfg.Seed, 'h', ex, ey)
		}
		return p
	}
	vMid := func(ex, ey int) geom.Point {
		a, b := corner(ex, ey), corner(ex, ey+1)
		p := geom.Point{X: (a.X + b.X) / 2, Y: (a.Y + b.Y) / 2}
		if ex > 0 && ex < cols {
			p.X += tigerEdgeJitter * cellW * latticeHash(cfg.Seed, 'v', ex, ey)
		}
		return p
	}

	i := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// CCW octagon: corners interleaved with edge midpoints.
			pg := geom.Polygon{
				corner(c, r), hMid(c, r), corner(c+1, r), vMid(c+1, r),
				corner(c+1, r+1), hMid(c, r+1), corner(c, r+1), vMid(c, r),
			}
			name := fmt.Sprintf("T%08d", i)
			if err := emit(i, name, geom.MultiPolygon{pg}); err != nil {
				return err
			}
			i++
		}
	}
	return nil
}
