// Package synth generates the synthetic universes and datasets that
// stand in for the paper's real inputs (data.ny.gov, Census, HUD/USPS,
// Esri — see DESIGN.md "Substitutions"). A universe is a pair of
// spatially incongruent Voronoi partitions over a rectangle — the
// zip-code-like source layer and the county-like target layer. A
// dataset is an individual-level point collection drawn from a spatial
// intensity field; aggregating its points over source units, target
// units and their intersections yields the aggregate vectors and the
// disaggregation matrix with exactly known ground truth.
//
// Each catalog dataset's intensity field is shaped to mirror the
// documented character of the corresponding real dataset (population:
// dense and smooth; USPS residential ≈ population; USPS business
// tightly co-located with residential to reproduce the §4.4.2
// collinearity; Starbucks: clustered at the largest centres; USA
// uninhabited places: anti-correlated with population; area: purely
// geometric). The experiments depend on this correlation structure, not
// on real boundaries.
package synth

import (
	"math"
	"math/rand"

	"geoalign/internal/geom"
)

// Field is a non-negative spatial intensity over the universe.
type Field interface {
	// Intensity returns the unnormalised density at p.
	Intensity(p geom.Point) float64
	// MaxIntensity returns an upper bound on Intensity over the
	// universe, used for rejection sampling.
	MaxIntensity() float64
}

// GaussianCenter is one component of a mixture field.
type GaussianCenter struct {
	At     geom.Point
	Weight float64 // peak height
	Sigma  float64 // spatial spread
}

// MixtureField is a Gaussian mixture plus a uniform base level — the
// workhorse shape for urban-style attributes.
type MixtureField struct {
	Centers []GaussianCenter
	Base    float64
}

// Intensity implements Field.
func (f *MixtureField) Intensity(p geom.Point) float64 {
	v := f.Base
	for _, c := range f.Centers {
		d2 := p.Dist2(c.At)
		v += c.Weight * math.Exp(-d2/(2*c.Sigma*c.Sigma))
	}
	return v
}

// MaxIntensity implements Field: base plus all peak heights is a safe
// bound (attained only if every centre coincides, but cheap and valid).
func (f *MixtureField) MaxIntensity() float64 {
	v := f.Base
	for _, c := range f.Centers {
		v += c.Weight
	}
	return v
}

// UniformField is constant intensity.
type UniformField struct{ Level float64 }

// Intensity implements Field.
func (f UniformField) Intensity(geom.Point) float64 { return f.Level }

// MaxIntensity implements Field.
func (f UniformField) MaxIntensity() float64 { return f.Level }

// InverseField is anti-correlated with a base field:
// Scale / (1 + Of.Intensity). It models "uninhabited places".
type InverseField struct {
	Of    Field
	Scale float64
}

// Intensity implements Field.
func (f InverseField) Intensity(p geom.Point) float64 {
	return f.Scale / (1 + f.Of.Intensity(p))
}

// MaxIntensity implements Field.
func (f InverseField) MaxIntensity() float64 { return f.Scale }

// BlendField is a fixed linear combination of fields with non-negative
// coefficients — used to build attributes with controlled correlation
// to others (e.g. USPS business ≈ 0.9·residential + business cores).
type BlendField struct {
	Parts  []Field
	Coeffs []float64
	Extra  float64 // additional uniform base
}

// Intensity implements Field.
func (f *BlendField) Intensity(p geom.Point) float64 {
	v := f.Extra
	for i, part := range f.Parts {
		v += f.Coeffs[i] * part.Intensity(p)
	}
	return v
}

// MaxIntensity implements Field.
func (f *BlendField) MaxIntensity() float64 {
	v := f.Extra
	for i, part := range f.Parts {
		v += f.Coeffs[i] * part.MaxIntensity()
	}
	return v
}

// Sampler is implemented by fields that can draw points directly,
// bypassing rejection sampling. Direct sampling is essential for the
// strongly concentrated urban fields, where a rejection envelope at the
// peak intensity would reject almost every candidate.
type Sampler interface {
	Sample(rng *rand.Rand, bounds geom.BBox) geom.Point
}

// SamplePoints draws n points from the field over bounds, using direct
// sampling when the field supports it and rejection sampling otherwise.
func SamplePoints(rng *rand.Rand, f Field, bounds geom.BBox, n int) []geom.Point {
	out := make([]geom.Point, 0, n)
	if s, ok := f.(Sampler); ok {
		for len(out) < n {
			out = append(out, s.Sample(rng, bounds))
		}
		return out
	}
	w := bounds.MaxX - bounds.MinX
	h := bounds.MaxY - bounds.MinY
	mx := f.MaxIntensity()
	for len(out) < n {
		p := geom.Point{
			X: bounds.MinX + rng.Float64()*w,
			Y: bounds.MinY + rng.Float64()*h,
		}
		if rng.Float64()*mx <= f.Intensity(p) {
			out = append(out, p)
		}
	}
	return out
}

// Sample implements Sampler for the mixture: a component is chosen in
// proportion to its (untruncated) mass — base·area for the uniform
// floor, weight·2πσ² for each Gaussian — then a point is drawn from it,
// re-drawing the rare samples that land outside bounds. Edge-truncated
// components are therefore very slightly over-weighted relative to the
// analytic density; for synthetic data generation that bias is
// irrelevant (the aggregates are measured from the points themselves).
func (f *MixtureField) Sample(rng *rand.Rand, bounds geom.BBox) geom.Point {
	w := bounds.MaxX - bounds.MinX
	h := bounds.MaxY - bounds.MinY
	total := f.Base * w * h
	for _, c := range f.Centers {
		total += c.Weight * 2 * math.Pi * c.Sigma * c.Sigma
	}
	for {
		pick := rng.Float64() * total
		pick -= f.Base * w * h
		if pick < 0 {
			return geom.Point{X: bounds.MinX + rng.Float64()*w, Y: bounds.MinY + rng.Float64()*h}
		}
		for _, c := range f.Centers {
			pick -= c.Weight * 2 * math.Pi * c.Sigma * c.Sigma
			if pick < 0 {
				for try := 0; try < 64; try++ {
					p := geom.Point{
						X: c.At.X + rng.NormFloat64()*c.Sigma,
						Y: c.At.Y + rng.NormFloat64()*c.Sigma,
					}
					if bounds.ContainsPoint(p) {
						return p
					}
				}
				break // centre far outside bounds: re-pick a component
			}
		}
	}
}

// Sample implements Sampler for blends by picking a part in proportion
// to its mass over bounds and delegating; parts without direct
// samplers fall back to rejection against their own envelope.
func (f *BlendField) Sample(rng *rand.Rand, bounds geom.BBox) geom.Point {
	w := bounds.MaxX - bounds.MinX
	h := bounds.MaxY - bounds.MinY
	masses := make([]float64, len(f.Parts)+1)
	total := 0.0
	for i, part := range f.Parts {
		masses[i] = f.Coeffs[i] * fieldMass(part, bounds)
		total += masses[i]
	}
	masses[len(f.Parts)] = f.Extra * w * h
	total += masses[len(f.Parts)]
	pick := rng.Float64() * total
	for i, m := range masses {
		pick -= m
		if pick < 0 {
			if i == len(f.Parts) {
				break // uniform extra
			}
			return samplePart(rng, f.Parts[i], bounds)
		}
	}
	return geom.Point{X: bounds.MinX + rng.Float64()*w, Y: bounds.MinY + rng.Float64()*h}
}

// fieldMass approximates the integral of a field over bounds, used for
// component selection in blends.
func fieldMass(f Field, bounds geom.BBox) float64 {
	w := bounds.MaxX - bounds.MinX
	h := bounds.MaxY - bounds.MinY
	switch v := f.(type) {
	case *MixtureField:
		total := v.Base * w * h
		for _, c := range v.Centers {
			total += c.Weight * 2 * math.Pi * c.Sigma * c.Sigma
		}
		return total
	case UniformField:
		return v.Level * w * h
	case *BlendField:
		total := v.Extra * w * h
		for i, part := range v.Parts {
			total += v.Coeffs[i] * fieldMass(part, bounds)
		}
		return total
	case InverseField:
		// Crude but adequate: grid quadrature.
		const g = 16
		var s float64
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				p := geom.Point{
					X: bounds.MinX + (float64(i)+0.5)*w/g,
					Y: bounds.MinY + (float64(j)+0.5)*h/g,
				}
				s += v.Intensity(p)
			}
		}
		return s * w * h / (g * g)
	default:
		return f.MaxIntensity() * w * h
	}
}

func samplePart(rng *rand.Rand, f Field, bounds geom.BBox) geom.Point {
	if s, ok := f.(Sampler); ok {
		return s.Sample(rng, bounds)
	}
	w := bounds.MaxX - bounds.MinX
	h := bounds.MaxY - bounds.MinY
	mx := f.MaxIntensity()
	for {
		p := geom.Point{X: bounds.MinX + rng.Float64()*w, Y: bounds.MinY + rng.Float64()*h}
		if rng.Float64()*mx <= f.Intensity(p) {
			return p
		}
	}
}

// RandomCenters places n metropolitan areas uniformly in bounds and
// expands each into a clump of tight satellite blocks (the core plus a
// handful of neighbourhoods). Weights are heavy-tailed — a few
// metropolises dominate, the way real settlement masses do — and the
// block-level clumpiness means mass is spiky below the source-unit
// scale, which is what makes area-proportional splitting fail the way
// Figure 5 shows.
func RandomCenters(rng *rand.Rand, n int, bounds geom.BBox) []GaussianCenter {
	w := bounds.MaxX - bounds.MinX
	h := bounds.MaxY - bounds.MinY
	scale := math.Sqrt(w * h)
	const blocksPerMetro = 6
	out := make([]GaussianCenter, 0, n*(blocksPerMetro+1))
	for i := 0; i < n; i++ {
		at := geom.Point{
			X: bounds.MinX + rng.Float64()*w,
			Y: bounds.MinY + rng.Float64()*h,
		}
		weight := math.Pow(rng.Float64(), 4) * 400
		sigma := scale * (0.004 + rng.Float64()*0.012)
		// The dense core holds half the metro's mass.
		out = append(out, GaussianCenter{At: at, Weight: weight, Sigma: sigma / 3})
		for b := 0; b < blocksPerMetro; b++ {
			out = append(out, GaussianCenter{
				At: geom.Point{
					X: at.X + rng.NormFloat64()*1.5*sigma,
					Y: at.Y + rng.NormFloat64()*1.5*sigma,
				},
				Weight: weight / blocksPerMetro * (0.4 + rng.Float64()),
				Sigma:  sigma / 4,
			})
		}
	}
	return out
}

// TopCenters returns the k highest-weight centres (for tightly
// clustered attributes like coffee shops).
func TopCenters(centers []GaussianCenter, k int) []GaussianCenter {
	cp := append([]GaussianCenter(nil), centers...)
	// Selection sort for the top-k; k is tiny.
	for i := 0; i < k && i < len(cp); i++ {
		best := i
		for j := i + 1; j < len(cp); j++ {
			if cp[j].Weight > cp[best].Weight {
				best = j
			}
		}
		cp[i], cp[best] = cp[best], cp[i]
	}
	if k > len(cp) {
		k = len(cp)
	}
	return cp[:k]
}

// Tighten returns copies of the centres with sigma scaled by factor —
// used to turn a residential field into a denser business-district
// field.
func Tighten(centers []GaussianCenter, factor float64) []GaussianCenter {
	out := make([]GaussianCenter, len(centers))
	for i, c := range centers {
		out[i] = c
		out[i].Sigma = c.Sigma * factor
	}
	return out
}
