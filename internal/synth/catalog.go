package synth

import (
	"fmt"
	"math"
	"math/rand"

	"geoalign/internal/geom"
)

// CatalogKind selects which of the paper's two dataset collections to
// synthesise.
type CatalogKind int

const (
	// NewYork mirrors the 8-dataset New York State collection (§4.1):
	// three population-level references (Census population, USPS
	// residential and business addresses) plus five individual-level
	// datasets from data.ny.gov.
	NewYork CatalogKind = iota
	// UnitedStates mirrors the 10-dataset national collection: the three
	// population-level references, six Esri individual-level layers, and
	// the purely geometric Area dataset.
	UnitedStates
)

// Catalog bundles a universe with its datasets.
type Catalog struct {
	Universe *Universe
	Datasets []*Dataset
}

// DatasetNames lists the catalog's dataset names in order.
func (c *Catalog) DatasetNames() []string {
	out := make([]string, len(c.Datasets))
	for i, d := range c.Datasets {
		out[i] = d.Name
	}
	return out
}

// ByName returns the dataset with the given name, or nil.
func (c *Catalog) ByName(name string) *Dataset {
	for _, d := range c.Datasets {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// BuildCatalog generates the full dataset collection for a universe.
// pointBudget is the record count of the densest dataset (population);
// the others are scaled down from it the way sparse real datasets are
// smaller than the Census.
func BuildCatalog(kind CatalogKind, u *Universe, pointBudget int) (*Catalog, error) {
	if pointBudget < 100 {
		return nil, fmt.Errorf("synth: point budget %d too small (min 100)", pointBudget)
	}
	fields := u.catalogFields()
	cat := &Catalog{Universe: u}
	add := func(name string, f Field, frac float64) {
		n := int(float64(pointBudget) * frac)
		if n < 50 {
			n = 50
		}
		cat.Datasets = append(cat.Datasets, u.PointDataset(name, f, n))
	}
	switch kind {
	case NewYork:
		add("Attorney Registration", fields.professional, 0.08)
		add("DMV License Facilities", fields.facilities, 0.01)
		add("Food Service Inspections", fields.restaurants, 0.15)
		add("Liquor Licenses", fields.nightlife, 0.06)
		add("New York State Restaurants", fields.restaurantsSub, 0.05)
		add("Population", fields.population, 1.0)
		add("USPS Business Address", fields.business, 0.35)
		add("USPS Residential Address", fields.residential, 0.8)
	case UnitedStates:
		add("Accidents", fields.accidents, 0.12)
		area, err := u.AreaDataset()
		if err != nil {
			return nil, err
		}
		cat.Datasets = append(cat.Datasets, area)
		add("Cemeteries", fields.cemeteries, 0.02)
		add("Population", fields.population, 1.0)
		add("Public Buildings", fields.publicBuildings, 0.03)
		add("Shopping Centers", fields.shopping, 0.04)
		add("Starbucks", fields.starbucks, 0.015)
		add("USA Uninhabited Places", fields.uninhabited, 0.05)
		add("USPS Business Address", fields.business, 0.35)
		add("USPS Residential Address", fields.residential, 0.8)
	default:
		return nil, fmt.Errorf("synth: unknown catalog kind %d", kind)
	}
	return cat, nil
}

// catalogFields derives every dataset's intensity field from the
// universe's shared urban centres, fixing the correlation structure the
// experiments rely on.
type fieldSet struct {
	population      Field
	residential     Field
	business        Field
	professional    Field
	facilities      Field
	restaurants     Field
	restaurantsSub  Field
	nightlife       Field
	accidents       Field
	cemeteries      Field
	publicBuildings Field
	shopping        Field
	starbucks       Field
	uninhabited     Field
}

func (u *Universe) catalogFields() fieldSet {
	rng := rand.New(rand.NewSource(int64(len(u.Centers))*7919 + 17))
	// The generator's model, matching the assumption the paper validates
	// in §3.4: every attribute's spatial distribution is (approximately)
	// a convex combination of a few shared latent land-use geographies —
	// residential blocks, business cores, leisure strips, civic sites,
	// historic towns, a diffuse floor, and wilderness — plus a small
	// idiosyncratic component. Source-level similarity between two
	// attributes then genuinely implies intersection-level similarity,
	// which is what makes GeoAlign's weight learning work on real data.
	//
	// Latent displacements scale with the typical source-unit size, not
	// the universe: a city's restaurant strip is a few blocks from its
	// homes regardless of how finely the map is partitioned.
	cell := math.Sqrt((u.Bounds.MaxX - u.Bounds.MinX) * (u.Bounds.MaxY - u.Bounds.MinY) / float64(u.Source.Len()))

	// Rural population is not uniform: it clusters in villages. Without
	// this, an area split would approximate a population split in the
	// countryside and dasymetric-by-population would predict the Area
	// dataset well — the opposite of Figure 5b.
	villages := villageCenters(rng, u.Bounds, 6*metroCount(u.Centers))
	lres := &MixtureField{Centers: append(append([]GaussianCenter{}, u.Centers...), villages...), Base: 0.005}
	lbiz := &MixtureField{Centers: Tighten(displace(rng, modulate(rng, u.Centers, 0.3), 0.15*cell), 0.5), Base: 0}
	lleisure := &MixtureField{Centers: Tighten(displace(rng, modulate(rng, u.Centers, 0.8), 0.2*cell), 0.6), Base: 0}
	lcivic := &MixtureField{Centers: displace(rng, modulate(rng, u.Centers, 0.9), 0.15*cell), Base: 0}
	lold := &MixtureField{Centers: Tighten(displace(rng, modulate(rng, append(append([]GaussianCenter{}, villages...), u.Centers...), 1.2), 0.35*cell), 0.9), Base: 0}
	ldiffuse := UniformField{Level: 1}
	lwild := &MixtureField{Centers: wildernessCenters(rng, lres, u.Bounds, len(u.Centers)/4), Base: 0.02}

	// mix builds a dataset field: convex weights over latents plus a
	// small idiosyncratic clustered component unique to the dataset.
	mix := func(own float64, parts []Field, coeffs []float64) Field {
		ownField := &MixtureField{Centers: Tighten(displace(rng, modulate(rng, u.Centers, 1.0), 0.2*cell), 0.7), Base: 0}
		normParts := append([]Field{}, parts...)
		normCoeffs := append([]float64{}, coeffs...)
		if own > 0 {
			normParts = append(normParts, ownField)
			normCoeffs = append(normCoeffs, own)
		}
		// Normalise each latent by its mass so the coefficients express
		// shares of the dataset's total mass, not raw intensity scales.
		for i, part := range normParts {
			m := fieldMass(part, u.Bounds)
			if m > 0 {
				normCoeffs[i] = normCoeffs[i] / m
			}
		}
		return &BlendField{Parts: normParts, Coeffs: normCoeffs}
	}

	// The restaurant latents are shared between the two restaurant
	// datasets, which keeps them near-duplicates of each other (the NY
	// catalog derives one from the other, §4.1).
	foodService := mix(0.05, []Field{lleisure, lbiz}, []float64{0.8, 0.15})

	return fieldSet{
		population:      mix(0, []Field{lres}, []float64{1}),
		residential:     mix(0.02, []Field{lres}, []float64{0.98}),
		business:        mix(0.03, []Field{lbiz, lres}, []float64{0.35, 0.62}),
		professional:    mix(0.08, []Field{lbiz, lcivic, lres}, []float64{0.62, 0.15, 0.15}),
		facilities:      mix(0.05, []Field{lres, ldiffuse}, []float64{0.3, 0.65}),
		restaurants:     foodService,
		restaurantsSub:  foodService,
		nightlife:       mix(0.1, []Field{lleisure, lbiz}, []float64{0.75, 0.15}),
		accidents:       mix(0.05, []Field{lres, lcivic, ldiffuse}, []float64{0.5, 0.25, 0.2}),
		cemeteries:      mix(0.1, []Field{lold, ldiffuse, lres}, []float64{0.35, 0.3, 0.25}),
		publicBuildings: mix(0.05, []Field{lcivic, lres, lold, ldiffuse}, []float64{0.4, 0.25, 0.15, 0.15}),
		shopping:        mix(0.05, []Field{lbiz, lleisure}, []float64{0.55, 0.4}),
		starbucks:       mix(0.1, []Field{lbiz, lleisure}, []float64{0.5, 0.4}),
		uninhabited:     mix(0.05, []Field{lwild, ldiffuse}, []float64{0.85, 0.1}),
	}
}

func jitterCenters(rng *rand.Rand, centers []GaussianCenter, bounds geom.BBox, frac float64) []GaussianCenter {
	w := bounds.MaxX - bounds.MinX
	h := bounds.MaxY - bounds.MinY
	out := make([]GaussianCenter, len(centers))
	for i, c := range centers {
		out[i] = c
		out[i].At.X += rng.NormFloat64() * frac * w
		out[i].At.Y += rng.NormFloat64() * frac * h
	}
	return out
}

func widenCenters(centers []GaussianCenter, factor float64) []GaussianCenter {
	return Tighten(centers, factor)
}

// modulate scales each centre's weight by an independent log-normal
// factor exp(λ·z − λ²/2) (mean 1), giving the attribute its own
// per-city propensity while keeping the same settlement geography.
func modulate(rng *rand.Rand, centers []GaussianCenter, lambda float64) []GaussianCenter {
	out := make([]GaussianCenter, len(centers))
	for i, c := range centers {
		out[i] = c
		out[i].Weight = c.Weight * math.Exp(lambda*rng.NormFloat64()-lambda*lambda/2)
	}
	return out
}

// displace moves each centre by an independent N(0, d²) offset in both
// axes — the attribute's facilities sit near, but not exactly at, the
// population centre.
func displace(rng *rand.Rand, centers []GaussianCenter, d float64) []GaussianCenter {
	out := make([]GaussianCenter, len(centers))
	for i, c := range centers {
		out[i] = c
		out[i].At.X += rng.NormFloat64() * d
		out[i].At.Y += rng.NormFloat64() * d
	}
	return out
}

// villageCenters scatters k small settlements uniformly — the rural
// texture that keeps population distinct from area everywhere.
func villageCenters(rng *rand.Rand, bounds geom.BBox, k int) []GaussianCenter {
	w := bounds.MaxX - bounds.MinX
	h := bounds.MaxY - bounds.MinY
	scale := math.Sqrt(w * h)
	out := make([]GaussianCenter, k)
	for i := range out {
		out[i] = GaussianCenter{
			At: geom.Point{
				X: bounds.MinX + rng.Float64()*w,
				Y: bounds.MinY + rng.Float64()*h,
			},
			Weight: math.Pow(rng.Float64(), 2) * 4,
			Sigma:  scale * (0.002 + rng.Float64()*0.006),
		}
	}
	return out
}

// metroCount recovers the number of metros from the expanded centre
// list (RandomCenters emits a core plus satellites per metro).
func metroCount(centers []GaussianCenter) int {
	const blocksPerMetro = 6
	n := len(centers) / (blocksPerMetro + 1)
	if n < 1 {
		return 1
	}
	return n
}

// wildernessCenters places k broad centres in the low-intensity parts
// of the base field (deserts and mountains, not cities).
func wildernessCenters(rng *rand.Rand, base Field, bounds geom.BBox, k int) []GaussianCenter {
	w := bounds.MaxX - bounds.MinX
	h := bounds.MaxY - bounds.MinY
	scale := math.Sqrt(w * h)
	// Threshold: accept locations in the bottom intensity range. Use a
	// small sample to estimate a low quantile.
	probe := make([]float64, 0, 256)
	for i := 0; i < 256; i++ {
		p := geom.Point{X: bounds.MinX + rng.Float64()*w, Y: bounds.MinY + rng.Float64()*h}
		probe = append(probe, base.Intensity(p))
	}
	insertionSortF(probe)
	threshold := probe[len(probe)/4] // 25th percentile
	out := make([]GaussianCenter, 0, k)
	for tries := 0; len(out) < k && tries < 100000; tries++ {
		p := geom.Point{X: bounds.MinX + rng.Float64()*w, Y: bounds.MinY + rng.Float64()*h}
		if base.Intensity(p) > threshold {
			continue
		}
		out = append(out, GaussianCenter{
			At:     p,
			Weight: math.Pow(rng.Float64(), 2) * 10,
			Sigma:  scale * (0.02 + rng.Float64()*0.05),
		})
	}
	return out
}

func insertionSortF(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NYConfig returns the default config for a reduced-scale New York
// State universe (the paper's real counts are 1794 zips / 62 counties;
// the default here is laptop-test scale — cmd/experiments can raise it).
func NYConfig(seed int64, scale float64) Config {
	return Config{
		Seed:        seed,
		SourceUnits: scaleCount(1794, scale, 30),
		TargetUnits: scaleCount(62, scale, 5),
		Centers:     8,
	}
}

// USConfig returns the default config for a reduced-scale United States
// universe (real counts: 30238 zips / 3142 counties).
func USConfig(seed int64, scale float64) Config {
	return Config{
		Seed:        seed,
		SourceUnits: scaleCount(30238, scale, 60),
		TargetUnits: scaleCount(3142, scale, 8),
		Centers:     40,
	}
}

func scaleCount(full int, scale float64, min int) int {
	n := int(float64(full) * scale)
	if n < min {
		n = min
	}
	return n
}

// ScalingUniverses returns the six-universe hierarchy of §4.3 (NY,
// Mid-Atlantic, Northeast, Eastern Time Zone, non-West, US) with unit
// counts proportional to the paper's, multiplied by scale.
func ScalingUniverses(scale float64) []Config {
	specs := []struct {
		name     string
		src, tgt int
	}{
		{"New York State", 1794, 62},
		{"Mid-Atlantic States", 4990, 150},
		{"Northeast States", 7022, 217},
		{"Eastern Time Zone States", 12486, 1052},
		{"Non-West States", 22628, 2693},
		{"United States", 30238, 3142},
	}
	out := make([]Config, len(specs))
	for i, s := range specs {
		out[i] = Config{
			Seed:        int64(1000 + i),
			SourceUnits: scaleCount(s.src, scale, 20),
			TargetUnits: scaleCount(s.tgt, scale, 4),
			Centers:     6 + 6*i,
		}
	}
	return out
}

// ScalingUniverseNames returns the names matching ScalingUniverses.
func ScalingUniverseNames() []string {
	return []string{
		"New York State",
		"Mid-Atlantic States",
		"Northeast States",
		"Eastern Time Zone States",
		"Non-West States",
		"United States",
	}
}
