package synth

import (
	"fmt"
	"math"
	"math/rand"

	"geoalign/internal/interval"
	"geoalign/internal/sparse"
)

// The 1-D generator turns the paper's Figure 3 scenario (population
// histograms over incompatible age-bin systems) into a measurable
// experiment: GeoAlign's code path is dimension-independent, so the
// same cross-validation protocol must work on interval unit systems
// with nothing changed but crosswalk construction.

// Catalog1D is a set of age-profile datasets over two incongruent bin
// systems.
type Catalog1D struct {
	Name     string
	Source   *interval.Partition // narrow bins
	Target   *interval.Partition // wide, incompatible bins
	Datasets []*Dataset
}

// ageProfile is a 1-D density: a mixture of Gaussians over the age axis
// plus a uniform floor.
type ageProfile struct {
	means, sigmas, weights []float64
	base                   float64
	span                   float64
}

func (p *ageProfile) sample(rng *rand.Rand) float64 {
	total := p.base * p.span
	masses := make([]float64, len(p.means))
	for i := range p.means {
		masses[i] = p.weights[i] * p.sigmas[i] * math.Sqrt(2*math.Pi)
		total += masses[i]
	}
	for {
		pick := rng.Float64() * total
		pick -= p.base * p.span
		if pick < 0 {
			return rng.Float64() * p.span
		}
		for i := range p.means {
			pick -= masses[i]
			if pick < 0 {
				for {
					x := p.means[i] + rng.NormFloat64()*p.sigmas[i]
					if x >= 0 && x < p.span {
						return x
					}
				}
			}
		}
	}
}

// Build1DCatalog generates the Figure 3 experiment data: an age axis
// [0, 100) split into narrowBins source bins and wideBreaks target
// bins, with datasets whose age profiles share a few latent shapes
// (the 1-D analogue of the 2-D land-use latents).
func Build1DCatalog(seed int64, narrowBins int, wideBreaks []float64, budget int) (*Catalog1D, error) {
	if narrowBins < 2 {
		return nil, fmt.Errorf("synth: need at least 2 narrow bins")
	}
	if budget < 100 {
		return nil, fmt.Errorf("synth: 1-D budget %d too small", budget)
	}
	const span = 100.0
	src, err := interval.UniformPartition(0, span, narrowBins)
	if err != nil {
		return nil, err
	}
	if wideBreaks == nil {
		wideBreaks = []float64{0, 18, 35, 50, 65, 100}
	}
	tgt, err := interval.NewPartition(wideBreaks)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	// Latent age shapes shared across datasets.
	working := &ageProfile{means: []float64{32, 48}, sigmas: []float64{10, 9}, weights: []float64{1, 0.8}, base: 0.002, span: span}
	young := &ageProfile{means: []float64{9, 16}, sigmas: []float64{4, 3}, weights: []float64{1, 0.6}, base: 0.001, span: span}
	old := &ageProfile{means: []float64{72, 82}, sigmas: []float64{7, 6}, weights: []float64{1, 0.5}, base: 0.001, span: span}
	flat := &ageProfile{base: 0.01, span: span}

	mix := func(parts []*ageProfile, shares []float64) func(*rand.Rand) float64 {
		return func(rng *rand.Rand) float64 {
			pick := rng.Float64()
			for i, s := range shares {
				pick -= s
				if pick < 0 {
					return parts[i].sample(rng)
				}
			}
			return parts[len(parts)-1].sample(rng)
		}
	}

	specs := []struct {
		name   string
		frac   float64
		sample func(*rand.Rand) float64
	}{
		{"Population", 1.0, mix([]*ageProfile{working, young, old}, []float64{0.55, 0.25, 0.20})},
		{"School Enrollment", 0.25, mix([]*ageProfile{young, working}, []float64{0.92, 0.08})},
		{"Labor Force", 0.6, mix([]*ageProfile{working, young}, []float64{0.95, 0.05})},
		{"Retirement Benefits", 0.2, mix([]*ageProfile{old, working}, []float64{0.93, 0.07})},
		{"Hospital Visits", 0.3, mix([]*ageProfile{old, young, working, flat}, []float64{0.45, 0.25, 0.2, 0.1})},
		{"Licensed Drivers", 0.55, mix([]*ageProfile{working, old, flat}, []float64{0.8, 0.15, 0.05})},
	}
	cat := &Catalog1D{Name: "Age axis", Source: src, Target: tgt}
	for _, sp := range specs {
		n := int(float64(budget) * sp.frac)
		if n < 50 {
			n = 50
		}
		coo := sparse.NewCOO(src.Len(), tgt.Len())
		for k := 0; k < n; k++ {
			age := sp.sample(rng)
			i := src.Locate(age)
			j := tgt.Locate(age)
			if i < 0 || j < 0 {
				continue
			}
			coo.Add(i, j, 1)
		}
		dm := coo.ToCSR()
		cat.Datasets = append(cat.Datasets, &Dataset{
			Name:   sp.name,
			DM:     dm,
			Source: dm.RowSums(),
			Target: dm.ColSums(),
			Points: n,
		})
	}
	return cat, nil
}
