package core

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"geoalign/internal/snapshot"
	"geoalign/internal/sparse"
)

// testRefs builds a small 3-reference problem exercising both source
// conventions (explicit vector and DM-derived) and partial support.
func testRefs() []Reference {
	dm0 := sparse.NewCOO(4, 3)
	dm0.Add(0, 0, 2)
	dm0.Add(0, 1, 1)
	dm0.Add(1, 1, 3)
	dm0.Add(2, 2, 4)
	dm1 := sparse.NewCOO(4, 3)
	dm1.Add(0, 0, 1)
	dm1.Add(1, 0, 1)
	dm1.Add(1, 2, 2)
	dm1.Add(2, 1, 5)
	dm2 := sparse.NewCOO(4, 3)
	dm2.Add(0, 2, 3)
	dm2.Add(2, 0, 1)
	return []Reference{
		{Name: "area", DM: dm0.ToCSR()},
		{Name: "pop", Source: []float64{1.5, 3, 4.5, 0}, DM: dm1.ToCSR()},
		{Name: "", DM: dm2.ToCSR()},
	}
}

func bitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestEngineSnapshotRoundTrip(t *testing.T) {
	opts := Options{KeepDM: true}
	built, err := NewEngine(testRefs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	objectives := [][]float64{
		{10, 20, 30, 40},
		{0, 5, 0, 1},
		{3, 0, 7, 2},
	}

	meta := &SnapshotMeta{
		SourceKeys: []string{"s0", "s1", "s2", "s3"},
		TargetKeys: []string{"t0", "t1", "t2"},
	}
	var buf bytes.Buffer
	n, err := built.WriteSnapshot(&buf, meta)
	if err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if n != built.SnapshotSize(meta) {
		t.Fatalf("SnapshotSize predicted %d bytes, wrote %d", built.SnapshotSize(meta), n)
	}

	loaded, gotMeta, err := LoadSnapshotBytes(buf.Bytes(), opts)
	if err != nil {
		t.Fatalf("LoadSnapshotBytes: %v", err)
	}
	defer loaded.Close()
	if !loaded.FromSnapshot() || built.FromSnapshot() {
		t.Fatalf("FromSnapshot: loaded=%v built=%v", loaded.FromSnapshot(), built.FromSnapshot())
	}
	if loaded.MappedBytes() != int64(buf.Len()) {
		t.Fatalf("MappedBytes = %d, want %d", loaded.MappedBytes(), buf.Len())
	}
	if !reflect.DeepEqual(gotMeta.SourceKeys, meta.SourceKeys) || !reflect.DeepEqual(gotMeta.TargetKeys, meta.TargetKeys) {
		t.Fatalf("meta keys did not round-trip: %+v", gotMeta)
	}
	if loaded.SourceUnits() != 4 || loaded.TargetUnits() != 3 || loaded.References() != 3 {
		t.Fatalf("dimensions: %d x %d x %d", loaded.SourceUnits(), loaded.TargetUnits(), loaded.References())
	}
	if !reflect.DeepEqual(loaded.ZeroSupportRows(), built.ZeroSupportRows()) {
		t.Fatal("zero-row mask did not round-trip")
	}
	if loaded.PrecomputeBytes() <= 0 {
		t.Fatal("PrecomputeBytes <= 0")
	}

	for oi, obj := range objectives {
		want, err := built.Align(obj)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Align(obj)
		if err != nil {
			t.Fatal(err)
		}
		if !bitEqual(got.Weights, want.Weights) {
			t.Fatalf("objective %d: weights differ: %v vs %v", oi, got.Weights, want.Weights)
		}
		if !bitEqual(got.Target, want.Target) {
			t.Fatalf("objective %d: targets differ: %v vs %v", oi, got.Target, want.Target)
		}
		if !bitEqual(got.DM.Val, want.DM.Val) || !reflect.DeepEqual(got.DM.ColIdx, want.DM.ColIdx) {
			t.Fatalf("objective %d: estimated crosswalks differ", oi)
		}
	}

	wantBatch, err := built.AlignAll(objectives, 2)
	if err != nil {
		t.Fatal(err)
	}
	gotBatch, err := loaded.AlignAll(objectives, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantBatch {
		if !bitEqual(gotBatch[i].Target, wantBatch[i].Target) || !bitEqual(gotBatch[i].Weights, wantBatch[i].Weights) {
			t.Fatalf("batch objective %d differs", i)
		}
	}
}

func TestEngineSnapshotFile(t *testing.T) {
	built, err := NewEngine(testRefs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "engine.snap")
	if err := built.WriteSnapshotFile(path, nil); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	loaded, meta, err := LoadSnapshot(path, Options{})
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if len(meta.SourceKeys) != 0 || len(meta.TargetKeys) != 0 {
		t.Fatalf("unexpected keys in meta: %+v", meta)
	}
	obj := []float64{1, 2, 3, 4}
	want, err := built.Align(obj)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Align(obj)
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(got.Target, want.Target) {
		t.Fatalf("targets differ: %v vs %v", got.Target, want.Target)
	}
	if err := loaded.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := loaded.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestSnapshotPersistsSolverCaches(t *testing.T) {
	built, err := NewEngine(testRefs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	built.PrecomputeSolverCaches()
	wantLip, ok := built.gram.CachedLipschitz()
	if !ok {
		t.Fatal("Lipschitz not cached after PrecomputeSolverCaches")
	}

	var buf bytes.Buffer
	if _, err := built.WriteSnapshot(&buf, nil); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := LoadSnapshotBytes(buf.Bytes(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	gotLip, ok := loaded.gram.CachedLipschitz()
	if !ok || math.Float64bits(gotLip) != math.Float64bits(wantLip) {
		t.Fatalf("Lipschitz: got (%v,%v), want (%v,true)", gotLip, ok, wantLip)
	}
	wantChol, wantDone := built.gram.CachedCholesky()
	gotChol, gotDone := loaded.gram.CachedCholesky()
	if !wantDone || !gotDone {
		t.Fatalf("Cholesky not cached: built=%v loaded=%v", wantDone, gotDone)
	}
	if (wantChol == nil) != (gotChol == nil) {
		t.Fatalf("Cholesky PD state differs: built=%v loaded=%v", wantChol != nil, gotChol != nil)
	}
	if wantChol != nil && !bitEqual(gotChol.Data, wantChol.Data) {
		t.Fatal("Cholesky factor did not round-trip bit-identically")
	}
}

// TestSnapshotWithoutSolverCaches: a snapshot written before the lazy
// state exists must load with the caches unset, and SolverIterations
// must trigger the same eager Lipschitz computation NewEngine performs.
func TestSnapshotWithoutSolverCaches(t *testing.T) {
	built, err := NewEngine(testRefs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := built.WriteSnapshot(&buf, nil); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := LoadSnapshotBytes(buf.Bytes(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if _, ok := loaded.gram.CachedLipschitz(); ok {
		t.Fatal("Lipschitz unexpectedly cached")
	}
	if _, done := loaded.gram.CachedCholesky(); done {
		t.Fatal("Cholesky unexpectedly cached")
	}

	pg, _, err := LoadSnapshotBytes(buf.Bytes(), Options{SolverIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	if _, ok := pg.gram.CachedLipschitz(); !ok {
		t.Fatal("SolverIterations did not force the Lipschitz constant")
	}
	wantBuilt, err := NewEngine(testRefs(), Options{SolverIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	obj := []float64{2, 4, 6, 8}
	want, err := wantBuilt.Align(obj)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pg.Align(obj)
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(got.Target, want.Target) {
		t.Fatal("projected-gradient results differ between built and loaded engines")
	}
}

func TestSnapshotFallbackOption(t *testing.T) {
	fbCOO := sparse.NewCOO(4, 3)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			fbCOO.Add(i, j, 1)
		}
	}
	fb := fbCOO.ToCSR()
	opts := Options{FallbackDM: fb}
	built, err := NewEngine(testRefs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := built.WriteSnapshot(&buf, nil); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := LoadSnapshotBytes(buf.Bytes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	// Row 3 has no reference support: only the fallback redistributes it.
	obj := []float64{1, 1, 1, 9}
	want, err := built.Align(obj)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Align(obj)
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(got.Target, want.Target) {
		t.Fatalf("fallback targets differ: %v vs %v", got.Target, want.Target)
	}
	var total float64
	for _, v := range got.Target {
		total += v
	}
	if math.Abs(total-12) > 1e-9 {
		t.Fatalf("fallback did not preserve volume: total %v, want 12", total)
	}
}

// tinySections is a hand-built, internally consistent snapshot of a
// minimal 1-reference engine; tests mutate individual sections to prove
// the loader rejects structurally inconsistent files.
type tinySections struct {
	meta      []int
	scalars   []float64
	patIndPtr []int
	patColIdx []int
	wm        []float64
	gram      []float64
	zero      []byte
	names     []string
	dmIndPtr  []int
	dmColIdx  []int
	dmVal     []float64
	rowSums   []float64
	slots     []int
}

func validTiny() *tinySections {
	return &tinySections{
		meta:      []int{2, 2, 1, 0}, // ns=2, nt=2, k=1
		scalars:   []float64{1, 0},
		patIndPtr: []int{0, 2, 3},
		patColIdx: []int{0, 1, 1},
		wm:        []float64{1, 1},
		gram:      []float64{2},
		zero:      []byte{0, 0},
		names:     []string{"ref"},
		dmIndPtr:  []int{0, 2, 3},
		dmColIdx:  []int{0, 1, 1},
		dmVal:     []float64{1, 1, 2},
		rowSums:   []float64{2, 2},
		slots:     []int{0, 1, 2},
	}
}

func (s *tinySections) encode(t *testing.T) []byte {
	t.Helper()
	w := snapshot.NewWriter()
	w.Ints(secMeta, s.meta)
	w.F64(secScalars, s.scalars)
	w.Ints(secPatIndPtr, s.patIndPtr)
	w.Ints(secPatColIdx, s.patColIdx)
	w.F64(secWeightMat, s.wm)
	w.F64(secGram, s.gram)
	w.Bytes(secZeroRow, s.zero)
	w.Strings(secRefNames, s.names)
	w.Ints(refSectionBase+refDMIndPtr, s.dmIndPtr)
	w.Ints(refSectionBase+refDMColIdx, s.dmColIdx)
	w.F64(refSectionBase+refDMVal, s.dmVal)
	w.F64(refSectionBase+refRowSums, s.rowSums)
	w.Ints(refSectionBase+refSlots, s.slots)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotStructuralValidation(t *testing.T) {
	// The unmutated sections must load and align.
	e, _, err := LoadSnapshotBytes(validTiny().encode(t), Options{})
	if err != nil {
		t.Fatalf("valid tiny snapshot rejected: %v", err)
	}
	if _, err := e.Align([]float64{3, 5}); err != nil {
		t.Fatalf("tiny engine Align: %v", err)
	}
	e.Close()

	cases := []struct {
		name   string
		mutate func(s *tinySections)
	}{
		{"meta too short", func(s *tinySections) { s.meta = s.meta[:3] }},
		{"zero references", func(s *tinySections) { s.meta[2] = 0 }},
		{"negative units", func(s *tinySections) { s.meta[0] = -1 }},
		{"implausible units", func(s *tinySections) { s.meta[0] = 1 << 50 }},
		{"pattern indptr length", func(s *tinySections) { s.patIndPtr = []int{0, 3} }},
		{"pattern indptr start", func(s *tinySections) { s.patIndPtr[0] = 1 }},
		{"pattern indptr end", func(s *tinySections) { s.patIndPtr[2] = 2 }},
		{"pattern indptr decreasing", func(s *tinySections) { s.patIndPtr[1] = 3; s.patIndPtr[2] = 2 }},
		// An interior pointer overshooting the entry count while the last
		// pointer still equals it: the decrease only shows up one row
		// later, so a loop that trusted indptr[i+1] before comparing the
		// pair would index past the column slice.
		{"pattern indptr interior overshoot", func(s *tinySections) { s.patIndPtr[1] = 4 }},
		{"dm indptr interior overshoot", func(s *tinySections) { s.dmIndPtr[1] = 4 }},
		{"pattern column out of range", func(s *tinySections) { s.patColIdx[2] = 2 }},
		{"pattern columns unsorted", func(s *tinySections) { s.patColIdx[0], s.patColIdx[1] = 1, 0 }},
		{"design matrix length", func(s *tinySections) { s.wm = []float64{1} }},
		{"gram length", func(s *tinySections) { s.gram = []float64{2, 0} }},
		{"zero mask length", func(s *tinySections) { s.zero = []byte{0} }},
		{"zero mask disagrees", func(s *tinySections) { s.zero[0] = 1 }},
		{"name count", func(s *tinySections) { s.names = []string{"a", "b"} }},
		{"dm value length", func(s *tinySections) { s.dmVal = s.dmVal[:2] }},
		{"row sums length", func(s *tinySections) { s.rowSums = s.rowSums[:1] }},
		{"slot count", func(s *tinySections) { s.slots = s.slots[:2] }},
		{"slot out of file range", func(s *tinySections) { s.slots[2] = 9 }},
		{"slot in wrong row", func(s *tinySections) { s.slots[2] = 1 }},
		{"slot on wrong column", func(s *tinySections) { s.slots[0] = 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validTiny()
			tc.mutate(s)
			e, _, err := LoadSnapshotBytes(s.encode(t), Options{})
			if err == nil {
				e.Close()
				t.Fatal("structurally inconsistent snapshot accepted")
			}
			if !errors.Is(err, snapshot.ErrCorrupt) {
				t.Fatalf("err = %v, want errors.Is(err, snapshot.ErrCorrupt)", err)
			}
		})
	}

	t.Run("missing section", func(t *testing.T) {
		w := snapshot.NewWriter()
		w.Ints(secMeta, []int{2, 2, 1, 0})
		var buf bytes.Buffer
		if _, err := w.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		_, _, err := LoadSnapshotBytes(buf.Bytes(), Options{})
		if !errors.Is(err, snapshot.ErrMissingSection) {
			t.Fatalf("err = %v, want ErrMissingSection", err)
		}
	})
}

// TestFallbackSumsCached pins the satellite optimisation: repeated
// degenerate patches reuse one cached row-sum pass over the fallback.
func TestFallbackSumsCached(t *testing.T) {
	fbCOO := sparse.NewCOO(4, 3)
	for i := 0; i < 4; i++ {
		fbCOO.Add(i, i%3, 1)
	}
	opts := Options{FallbackDM: fbCOO.ToCSR()}
	e, err := NewEngine(testRefs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	obj := []float64{1, 1, 1, 9}
	first, err := e.Align(obj)
	if err != nil {
		t.Fatal(err)
	}
	sums := e.fallbackSums()
	again := e.fallbackSums()
	if &sums[0] != &again[0] {
		t.Fatal("fallbackSums recomputed instead of reusing the cache")
	}
	second, err := e.Align(obj)
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(first.Target, second.Target) {
		t.Fatal("cached fallback sums changed the result")
	}
}
