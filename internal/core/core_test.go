package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"geoalign/internal/sparse"
)

func mustCSR(t testing.TB, d [][]float64) *sparse.CSR {
	t.Helper()
	m, err := sparse.FromDense(d)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func vecEq(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// The paper's introduction example: a zip code with 25,000 people split
// 10,000/15,000 between counties A and B; 100 crimes should split 40/60.
func TestDasymetricIntroductionExample(t *testing.T) {
	dm := mustCSR(t, [][]float64{{10000, 15000}})
	got, err := Dasymetric([]float64{100}, Reference{Name: "population", DM: dm})
	if err != nil {
		t.Fatal(err)
	}
	if !vecEq(got, []float64{40, 60}, 1e-9) {
		t.Errorf("crimes = %v, want [40 60]", got)
	}
}

func TestDasymetricZeroRow(t *testing.T) {
	dm := mustCSR(t, [][]float64{
		{1, 1},
		{0, 0}, // unsupported source unit
	})
	got, err := Dasymetric([]float64{10, 7}, Reference{DM: dm})
	if err != nil {
		t.Fatal(err)
	}
	if !vecEq(got, []float64{5, 5}, 1e-9) {
		t.Errorf("target = %v, want [5 5]: unsupported unit must contribute nothing", got)
	}
}

func TestDasymetricErrors(t *testing.T) {
	if _, err := Dasymetric(nil, Reference{}); err == nil {
		t.Error("empty objective accepted")
	}
	if _, err := Dasymetric([]float64{1}, Reference{}); err == nil {
		t.Error("nil DM accepted")
	}
	dm := mustCSR(t, [][]float64{{1}})
	if _, err := Dasymetric([]float64{1, 2}, Reference{DM: dm}); err == nil {
		t.Error("row mismatch accepted")
	}
}

func TestArealWeightingIsUniformSplit(t *testing.T) {
	// 70% of the zip's area in county A, 30% in B (the paper's §1
	// crimes-by-area example).
	dm := mustCSR(t, [][]float64{{0.7, 0.3}})
	got, err := ArealWeighting([]float64{100}, dm)
	if err != nil {
		t.Fatal(err)
	}
	if !vecEq(got, []float64{70, 30}, 1e-9) {
		t.Errorf("crimes = %v, want [70 30]", got)
	}
}

func TestAlignSingleReferenceMatchesDasymetric(t *testing.T) {
	// With one reference GeoAlign's β = [1] and Eq. 14 reduces to the
	// dasymetric redistribution (when Source matches DM row sums).
	dm := mustCSR(t, [][]float64{
		{2, 1, 0},
		{0, 3, 3},
		{5, 0, 5},
	})
	obj := []float64{9, 12, 20}
	res, err := Align(Problem{Objective: obj, References: []Reference{{Name: "r", DM: dm}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Dasymetric(obj, Reference{DM: dm})
	if !vecEq(res.Target, want, 1e-9) {
		t.Errorf("Align = %v, dasymetric = %v", res.Target, want)
	}
	if !vecEq(res.Weights, []float64{1}, 0) {
		t.Errorf("weights = %v, want [1]", res.Weights)
	}
}

func TestAlignRecoversDominantReference(t *testing.T) {
	// Objective is exactly reference 0's distribution; reference 1 is
	// unrelated. GeoAlign should weight reference 0 ≈ 1 and reproduce
	// the true target aggregates.
	dm0 := mustCSR(t, [][]float64{
		{10, 0},
		{4, 6},
		{0, 20},
		{7, 3},
	})
	dm1 := mustCSR(t, [][]float64{
		{0, 3},
		{9, 0},
		{2, 2},
		{0, 8},
	})
	obj := dm0.RowSums() // objective == reference 0 at source level
	res, err := Align(Problem{
		Objective: obj,
		References: []Reference{
			{Name: "good", DM: dm0},
			{Name: "bad", DM: dm1},
		},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights[0] < 0.95 {
		t.Errorf("weights = %v, want β0 ≈ 1", res.Weights)
	}
	want := dm0.ColSums()
	if !vecEq(res.Target, want, 1e-6*floatMax(want)) {
		t.Errorf("target = %v, want %v", res.Target, want)
	}
}

func TestAlignWeightsOnSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomProblem(rng, 30, 8, 4)
	res, err := Align(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var s float64
	for _, b := range res.Weights {
		if b < -1e-9 {
			t.Errorf("negative weight %v", b)
		}
		s += b
	}
	if math.Abs(s-1) > 1e-7 {
		t.Errorf("weights sum to %v", s)
	}
}

func TestAlignVolumePreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := randomProblem(rng, 40, 10, 3)
	res, err := Align(p, Options{KeepDM: true})
	if err != nil {
		t.Fatal(err)
	}
	tol := 1e-7 * (1 + floatMax(p.Objective))
	if i := CheckVolumePreserving(res.DM, p.Objective, tol); i >= 0 {
		t.Errorf("volume not preserved at row %d", i)
	}
	// Total mass is conserved (every source unit had reference support
	// in randomProblem).
	var in, out float64
	for _, v := range p.Objective {
		in += v
	}
	for _, v := range res.Target {
		out += v
	}
	if math.Abs(in-out) > tol*float64(len(p.Objective)) {
		t.Errorf("mass in %v != mass out %v", in, out)
	}
}

func TestAlignZeroReferenceRowGivesZero(t *testing.T) {
	// Source unit 1 has zero in every reference: Eq. 14 second case.
	dm0 := mustCSR(t, [][]float64{{1, 1}, {0, 0}})
	dm1 := mustCSR(t, [][]float64{{2, 0}, {0, 0}})
	res, err := Align(Problem{
		Objective:  []float64{10, 99},
		References: []Reference{{DM: dm0}, {DM: dm1}},
	}, Options{KeepDM: true})
	if err != nil {
		t.Fatal(err)
	}
	cols, vals := res.DM.Row(1)
	for k := range cols {
		if vals[k] != 0 {
			t.Errorf("row 1 entry %d = %v, want 0", cols[k], vals[k])
		}
	}
	var total float64
	for _, v := range res.Target {
		total += v
	}
	if math.Abs(total-10) > 1e-9 {
		t.Errorf("total = %v, want 10 (the supported unit only)", total)
	}
}

func TestAlignInconsistentSourceStillPreservesVolume(t *testing.T) {
	// A reference whose published source vector disagrees with its DM:
	// the explicit vector feeds weight learning only, and Eq. 14 scales
	// against the crosswalk's own row sums, so volume is preserved.
	dm := mustCSR(t, [][]float64{{1, 1}})
	res, err := Align(Problem{
		Objective:  []float64{10},
		References: []Reference{{DM: dm, Source: []float64{4}}},
	}, Options{KeepDM: true})
	if err != nil {
		t.Fatal(err)
	}
	if !vecEq(res.Target, []float64{5, 5}, 1e-9) {
		t.Errorf("target = %v, want [5 5]", res.Target)
	}
	if i := CheckVolumePreserving(res.DM, []float64{10}, 1e-9); i >= 0 {
		t.Errorf("volume not preserved at row %d", i)
	}
}

func TestAlignValidation(t *testing.T) {
	dm := mustCSR(t, [][]float64{{1, 1}})
	if _, err := Align(Problem{}, Options{}); err != ErrNoSourceUnits {
		t.Errorf("err = %v, want ErrNoSourceUnits", err)
	}
	if _, err := Align(Problem{Objective: []float64{1}}, Options{}); err != ErrNoReferences {
		t.Errorf("err = %v, want ErrNoReferences", err)
	}
	if _, err := Align(Problem{
		Objective:  []float64{1, 2},
		References: []Reference{{DM: dm}},
	}, Options{}); err == nil {
		t.Error("row mismatch accepted")
	}
	dm2 := mustCSR(t, [][]float64{{1, 1, 1}})
	if _, err := Align(Problem{
		Objective:  []float64{1},
		References: []Reference{{DM: dm}, {DM: dm2}},
	}, Options{}); err == nil {
		t.Error("column mismatch between references accepted")
	}
	if _, err := Align(Problem{
		Objective:  []float64{1},
		References: []Reference{{DM: dm, Source: []float64{1, 2}}},
	}, Options{}); err == nil {
		t.Error("source length mismatch accepted")
	}
	if _, err := Align(Problem{
		Objective:  []float64{1},
		References: []Reference{{DM: nil}},
	}, Options{}); err == nil {
		t.Error("nil DM accepted")
	}
}

func TestAlignProjectedGradientSolverAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := randomProblem(rng, 50, 12, 4)
	r1, err := Align(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Align(p, Options{SolverIterations: 30000})
	if err != nil {
		t.Fatal(err)
	}
	// Targets must be close (weights may differ slightly when the
	// optimum is flat, but the induced estimate should agree).
	scale := 1 + floatMax(r1.Target)
	if !vecEq(r1.Target, r2.Target, 5e-3*scale) {
		t.Errorf("solvers disagree:\n  active-set %v\n  proj-grad  %v", r1.Target, r2.Target)
	}
}

// Property: for random consistent problems, GeoAlign conserves total
// mass and preserves per-row volume.
func TestAlignConservationQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 5+rng.Intn(40), 2+rng.Intn(8), 1+rng.Intn(5))
		res, err := Align(p, Options{KeepDM: true})
		if err != nil {
			return false
		}
		tol := 1e-6 * (1 + floatMax(p.Objective))
		if CheckVolumePreserving(res.DM, p.Objective, tol) >= 0 {
			return false
		}
		var in, out float64
		for _, v := range p.Objective {
			in += v
		}
		for _, v := range res.Target {
			out += v
		}
		return math.Abs(in-out) <= tol*float64(len(p.Objective)+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLearnWeightsPrefersCorrelatedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ns, nt := 60, 10
	good := randomDM(rng, ns, nt)
	bad := randomDM(rng, ns, nt)
	obj := good.RowSums()
	// Perturb the objective a little so it is not an exact copy.
	for i := range obj {
		obj[i] *= 1 + 0.05*rng.NormFloat64()
		if obj[i] < 0 {
			obj[i] = 0
		}
	}
	beta, err := LearnWeights(Problem{
		Objective:  obj,
		References: []Reference{{DM: good}, {DM: bad}},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if beta[0] < 0.7 {
		t.Errorf("β = %v: correlated reference should dominate", beta)
	}
}

func TestCheckVolumePreservingDetectsViolation(t *testing.T) {
	dm := mustCSR(t, [][]float64{{1, 1}, {3, 3}})
	if i := CheckVolumePreserving(dm, []float64{2, 6}, 1e-9); i != -1 {
		t.Errorf("false positive at row %d", i)
	}
	if i := CheckVolumePreserving(dm, []float64{2, 5}, 1e-9); i != 1 {
		t.Errorf("violation not found, got %d", i)
	}
	// All-zero rows are allowed regardless of the objective.
	dm2 := mustCSR(t, [][]float64{{0, 0}})
	if i := CheckVolumePreserving(dm2, []float64{7}, 1e-9); i != -1 {
		t.Errorf("zero row flagged: %d", i)
	}
}

// --- helpers ---

func floatMax(v []float64) float64 {
	var m float64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// randomDM builds a random non-negative disaggregation matrix where
// every source unit overlaps 1-3 target units and every row has
// positive mass.
func randomDM(rng *rand.Rand, ns, nt int) *sparse.CSR {
	coo := sparse.NewCOO(ns, nt)
	for i := 0; i < ns; i++ {
		k := 1 + rng.Intn(3)
		for c := 0; c < k; c++ {
			coo.Add(i, rng.Intn(nt), 1+rng.Float64()*100)
		}
	}
	return coo.ToCSR()
}

func randomProblem(rng *rand.Rand, ns, nt, nrefs int) Problem {
	refs := make([]Reference, nrefs)
	for k := range refs {
		refs[k] = Reference{DM: randomDM(rng, ns, nt)}
	}
	obj := make([]float64, ns)
	for i := range obj {
		obj[i] = rng.Float64() * 50
	}
	return Problem{Objective: obj, References: refs}
}
