package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"geoalign/internal/linalg"
	"geoalign/internal/sparse"
)

// legacyAlign is the pre-Engine Align implementation, kept verbatim as
// the oracle: the Engine must reproduce its numerics on every input.
func legacyAlign(p Problem, opts Options) (*Result, error) {
	ns, _, err := validate(p)
	if err != nil {
		return nil, err
	}
	beta, err := LearnWeights(p, opts)
	if err != nil {
		return nil, err
	}
	dms := make([]*sparse.CSR, len(p.References))
	w := make([]float64, len(p.References))
	for k, r := range p.References {
		dms[k] = r.DM
		w[k] = beta[k]
		if mx := linalg.MaxAbs(r.DM.RowSums()); mx > 0 {
			w[k] = beta[k] / mx
		}
	}
	num, err := sparse.WeightedSum(dms, w)
	if err != nil {
		return nil, err
	}
	den := num.RowSums()
	scale := make([]float64, ns)
	var degenerate []int
	for i := 0; i < ns; i++ {
		if den[i] != 0 {
			scale[i] = p.Objective[i] / den[i]
		} else if p.Objective[i] != 0 {
			degenerate = append(degenerate, i)
		}
	}
	dmo := num.ScaleRows(scale)
	if opts.FallbackDM != nil && len(degenerate) > 0 {
		fb := opts.FallbackDM
		if fb.Rows != ns || fb.Cols != dmo.Cols {
			return nil, fmt.Errorf("core: fallback DM is %dx%d, want %dx%d", fb.Rows, fb.Cols, ns, dmo.Cols)
		}
		dmo, err = patchRows(dmo, fb, nil, degenerate, p.Objective)
		if err != nil {
			return nil, err
		}
	}
	target := dmo.ColSums()
	res := &Result{Target: target, Weights: beta}
	if opts.KeepDM {
		res.DM = dmo
	}
	return res, nil
}

// engineProblem builds a randomized problem with empty rows, explicit
// source vectors and occasional single-reference cases.
func engineProblem(rng *rand.Rand, ns, nt, k int) Problem {
	refs := make([]Reference, k)
	for kk := 0; kk < k; kk++ {
		coo := sparse.NewCOO(ns, nt)
		for i := 0; i < ns; i++ {
			if rng.Float64() < 0.15 {
				continue // this reference has no support here
			}
			deg := 1 + rng.Intn(3)
			for d := 0; d < deg; d++ {
				coo.Add(i, rng.Intn(nt), rng.Float64()*1000)
			}
		}
		refs[kk] = Reference{Name: fmt.Sprintf("ref%d", kk), DM: coo.ToCSR()}
		if rng.Float64() < 0.3 {
			src := make([]float64, ns)
			for i := range src {
				src[i] = rng.Float64() * 500
			}
			refs[kk].Source = src
		}
	}
	obj := make([]float64, ns)
	for i := range obj {
		obj[i] = rng.Float64() * 800
	}
	return Problem{Objective: obj, References: refs}
}

func resultsClose(t *testing.T, tag string, got, want *Result, tol float64) {
	t.Helper()
	if len(got.Weights) != len(want.Weights) || len(got.Target) != len(want.Target) {
		t.Fatalf("%s: shape mismatch", tag)
	}
	for k := range want.Weights {
		if math.Abs(got.Weights[k]-want.Weights[k]) > tol {
			t.Fatalf("%s: weight %d = %v, want %v", tag, k, got.Weights[k], want.Weights[k])
		}
	}
	for j := range want.Target {
		if math.Abs(got.Target[j]-want.Target[j]) > tol*(1+math.Abs(want.Target[j])) {
			t.Fatalf("%s: target %d = %v, want %v", tag, j, got.Target[j], want.Target[j])
		}
	}
	if (got.DM == nil) != (want.DM == nil) {
		t.Fatalf("%s: DM presence mismatch", tag)
	}
	if want.DM != nil && !sparse.Equal(got.DM, want.DM, tol*1000) {
		t.Fatalf("%s: DM mismatch", tag)
	}
}

// TestEngineMatchesLegacyAlign drives the Engine and the legacy
// implementation over randomized problems — serial kernels first, then
// with the parallel sparse paths forced on.
func TestEngineMatchesLegacyAlign(t *testing.T) {
	for _, mode := range []string{"serial", "parallel"} {
		t.Run(mode, func(t *testing.T) {
			if mode == "parallel" {
				sparse.SetParallelThreshold(0)
				sparse.SetKernelWorkers(4)
				t.Cleanup(func() {
					sparse.SetParallelThreshold(sparse.DefaultParallelThreshold)
					sparse.SetKernelWorkers(0)
				})
			}
			rng := rand.New(rand.NewSource(21))
			for trial := 0; trial < 60; trial++ {
				ns := 1 + rng.Intn(50)
				nt := 1 + rng.Intn(12)
				k := 1 + rng.Intn(5)
				p := engineProblem(rng, ns, nt, k)
				opts := Options{KeepDM: trial%2 == 0}
				if trial%7 == 3 {
					opts.SolverIterations = 500
				}
				if trial%5 == 4 {
					opts.FallbackDM = engineProblem(rng, ns, nt, 1).References[0].DM
				}
				want, err := legacyAlign(p, opts)
				if err != nil {
					t.Fatalf("trial %d: legacy: %v", trial, err)
				}
				e, err := NewEngine(p.References, opts)
				if err != nil {
					t.Fatalf("trial %d: NewEngine: %v", trial, err)
				}
				got, err := e.Align(p.Objective)
				if err != nil {
					t.Fatalf("trial %d: engine: %v", trial, err)
				}
				resultsClose(t, fmt.Sprintf("trial %d", trial), got, want, 1e-12)

				// A second call must not be perturbed by scratch reuse.
				got2, err := e.Align(p.Objective)
				if err != nil {
					t.Fatalf("trial %d: second align: %v", trial, err)
				}
				resultsClose(t, fmt.Sprintf("trial %d (warm)", trial), got2, want, 1e-12)
			}
		})
	}
}

// TestEngineAlignAllMatchesSequential compares the batch path against
// per-call Align on the same engine.
func TestEngineAlignAllMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	p := engineProblem(rng, 80, 15, 4)
	e, err := NewEngine(p.References, Options{KeepDM: true})
	if err != nil {
		t.Fatal(err)
	}
	objectives := make([][]float64, 17)
	for a := range objectives {
		obj := make([]float64, 80)
		for i := range obj {
			obj[i] = rng.Float64() * 100
		}
		objectives[a] = obj
	}
	batch, err := e.AlignAll(objectives, 8)
	if err != nil {
		t.Fatal(err)
	}
	for a, obj := range objectives {
		want, err := e.Align(obj)
		if err != nil {
			t.Fatal(err)
		}
		resultsClose(t, fmt.Sprintf("objective %d", a), batch[a], want, 0)
	}
}

// TestEngineAlignAllError reports the first failure in input order.
func TestEngineAlignAllError(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := engineProblem(rng, 10, 4, 2)
	e, err := NewEngine(p.References, Options{})
	if err != nil {
		t.Fatal(err)
	}
	objectives := [][]float64{p.Objective, make([]float64, 3), nil, p.Objective}
	results, err := e.AlignAll(objectives, 4)
	if err == nil {
		t.Fatal("mismatched objective accepted")
	}
	if results[0] == nil || results[3] == nil {
		t.Error("valid objectives not aligned alongside failures")
	}
	// The error must name the first bad index (1, the length mismatch).
	if want := "objective 1"; !contains(err.Error(), want) {
		t.Errorf("err = %v, want mention of %q", err, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestEngineAlignWithSources checks that source overrides reproduce an
// engine built with those sources baked in.
func TestEngineAlignWithSources(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	p := engineProblem(rng, 40, 8, 3)
	e, err := NewEngine(p.References, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sources := make([][]float64, len(p.References))
	altRefs := append([]Reference(nil), p.References...)
	for k := range sources {
		src := make([]float64, 40)
		for i := range src {
			src[i] = rng.Float64() * 100
		}
		sources[k] = src
		altRefs[k].Source = src
	}
	want, err := Align(Problem{Objective: p.Objective, References: altRefs}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.AlignWithSources(p.Objective, sources)
	if err != nil {
		t.Fatal(err)
	}
	resultsClose(t, "sources override", got, want, 1e-12)

	// nil entries fall back to the reference's own source.
	got2, err := e.AlignWithSources(p.Objective, make([][]float64, len(p.References)))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.Align(p.Objective)
	if err != nil {
		t.Fatal(err)
	}
	resultsClose(t, "nil overrides", got2, plain, 0)

	if _, err := e.AlignWithSources(p.Objective, make([][]float64, 1)); err == nil {
		t.Error("wrong override count accepted")
	}
	bad := make([][]float64, len(p.References))
	bad[0] = make([]float64, 7)
	if _, err := e.AlignWithSources(p.Objective, bad); err == nil {
		t.Error("wrong override length accepted")
	}
}

// TestEngineZeroSupportRows checks the precomputed degenerate mask.
func TestEngineZeroSupportRows(t *testing.T) {
	dm0 := mustCSR(t, [][]float64{{1, 1}, {0, 0}, {2, 0}})
	dm1 := mustCSR(t, [][]float64{{2, 0}, {0, 0}, {0, 3}})
	e, err := NewEngine([]Reference{{DM: dm0}, {DM: dm1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, false}
	got := e.ZeroSupportRows()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("zeroRow[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestEngineValidation mirrors TestAlignValidation at the Engine level.
func TestEngineValidation(t *testing.T) {
	dm := mustCSR(t, [][]float64{{1, 1}})
	if _, err := NewEngine(nil, Options{}); err != ErrNoReferences {
		t.Errorf("err = %v, want ErrNoReferences", err)
	}
	if _, err := NewEngine([]Reference{{DM: nil}}, Options{}); err == nil {
		t.Error("nil DM accepted")
	}
	dm2 := mustCSR(t, [][]float64{{1, 1, 1}})
	if _, err := NewEngine([]Reference{{DM: dm}, {DM: dm2}}, Options{}); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := NewEngine([]Reference{{DM: dm, Source: []float64{1, 2}}}, Options{}); err == nil {
		t.Error("source length mismatch accepted")
	}
	e, err := NewEngine([]Reference{{DM: dm}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Align(nil); err != ErrNoSourceUnits {
		t.Errorf("err = %v, want ErrNoSourceUnits", err)
	}
	if _, err := e.Align([]float64{1, 2}); err == nil {
		t.Error("objective length mismatch accepted")
	}
}
