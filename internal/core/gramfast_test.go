package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// tallProblem builds a problem tall enough (ns ≫ 8k) that the dense
// NNLS passive-set solver stays on its normal-equations branch — the
// regime where the Gram fast path and the dense escape hatch must agree
// to 1e-9.
func tallProblem(rng *rand.Rand, ns, k int) Problem {
	return engineProblem(rng, ns, 6, k)
}

// TestEngineGramMatchesDenseSolver drives the default (Gram) path and
// the Options.DenseSolver escape hatch over randomized tall problems;
// the learned weights must agree to 1e-9 absolute (β lives on the
// simplex, so absolute and relative coincide in scale).
func TestEngineGramMatchesDenseSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		k := 2 + rng.Intn(4)
		ns := 8*(k+1) + 10 + rng.Intn(200)
		p := tallProblem(rng, ns, k)

		fast, err := NewEngine(p.References, Options{})
		if err != nil {
			t.Fatalf("trial %d: NewEngine: %v", trial, err)
		}
		dense, err := NewEngine(p.References, Options{DenseSolver: true})
		if err != nil {
			t.Fatalf("trial %d: NewEngine dense: %v", trial, err)
		}
		bf, err := fast.LearnWeights(p.Objective)
		if err != nil {
			t.Fatalf("trial %d: gram LearnWeights: %v", trial, err)
		}
		bd, err := dense.LearnWeights(p.Objective)
		if err != nil {
			t.Fatalf("trial %d: dense LearnWeights: %v", trial, err)
		}
		for j := range bd {
			if math.Abs(bf[j]-bd[j]) > 1e-9 {
				t.Fatalf("trial %d (ns=%d k=%d): β differs: gram %v dense %v", trial, ns, k, bf, bd)
			}
		}

		// The free function must agree with the engine bit for bit:
		// both route through the same Gram code path.
		free, err := LearnWeights(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: free LearnWeights: %v", trial, err)
		}
		for j := range free {
			if free[j] != bf[j] {
				t.Fatalf("trial %d: free fn diverges from engine: %v vs %v", trial, free, bf)
			}
		}

		// Full Align through both paths: targets within 1e-9 relative.
		rf, err := fast.Align(p.Objective)
		if err != nil {
			t.Fatalf("trial %d: gram Align: %v", trial, err)
		}
		rd, err := dense.Align(p.Objective)
		if err != nil {
			t.Fatalf("trial %d: dense Align: %v", trial, err)
		}
		for j := range rd.Target {
			if math.Abs(rf.Target[j]-rd.Target[j]) > 1e-9*(1+math.Abs(rd.Target[j])) {
				t.Fatalf("trial %d: target %d: gram %v dense %v", trial, j, rf.Target[j], rd.Target[j])
			}
		}
	}
}

// TestEngineDenseSolverAlignAll checks that the dense escape hatch is
// honoured on the batch path too.
func TestEngineDenseSolverAlignAll(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	p := tallProblem(rng, 120, 3)
	dense, err := NewEngine(p.References, Options{DenseSolver: true})
	if err != nil {
		t.Fatal(err)
	}
	objectives := make([][]float64, 9)
	for a := range objectives {
		obj := make([]float64, 120)
		for i := range obj {
			obj[i] = rng.Float64() * 50
		}
		objectives[a] = obj
	}
	batch, err := dense.AlignAll(objectives, 4)
	if err != nil {
		t.Fatal(err)
	}
	for a, obj := range objectives {
		want, err := dense.Align(obj)
		if err != nil {
			t.Fatal(err)
		}
		resultsClose(t, fmt.Sprintf("dense objective %d", a), batch[a], want, 0)
	}
}

// TestEngineBatchWarmStartStress hammers the warm-started batch path
// with many objectives over several worker counts; every result must be
// bit-identical to the sequential cold-started solve. Run under -race
// in CI, this also exercises the shared GramSystem for data races.
func TestEngineBatchWarmStartStress(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for _, cfg := range []struct{ ns, k, n int }{
		{60, 2, 40},
		{200, 5, 64},
		{35, 4, 25},
	} {
		p := engineProblem(rng, cfg.ns, 9, cfg.k)
		e, err := NewEngine(p.References, Options{})
		if err != nil {
			t.Fatal(err)
		}
		objectives := make([][]float64, cfg.n)
		for a := range objectives {
			obj := make([]float64, cfg.ns)
			for i := range obj {
				obj[i] = rng.Float64() * 300
				if rng.Intn(12) == 0 {
					obj[i] = 0
				}
			}
			objectives[a] = obj
		}
		want := make([]*Result, cfg.n)
		for a, obj := range objectives {
			want[a], err = e.Align(obj)
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, workers := range []int{1, 2, 7, 16} {
			batch, err := e.AlignAll(objectives, workers)
			if err != nil {
				t.Fatalf("ns=%d k=%d workers=%d: %v", cfg.ns, cfg.k, workers, err)
			}
			for a := range objectives {
				resultsClose(t, fmt.Sprintf("ns=%d k=%d workers=%d objective %d", cfg.ns, cfg.k, workers, a), batch[a], want[a], 0)
			}
		}
	}
}

// TestEnginePGGramMatchesDensePG compares the cached-Lipschitz FISTA
// path against the dense projected-gradient solver.
func TestEnginePGGramMatchesDensePG(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 10; trial++ {
		k := 2 + rng.Intn(3)
		p := tallProblem(rng, 100+rng.Intn(100), k)
		opts := Options{SolverIterations: 3000}
		fast, err := NewEngine(p.References, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.DenseSolver = true
		dense, err := NewEngine(p.References, opts)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := fast.LearnWeights(p.Objective)
		if err != nil {
			t.Fatal(err)
		}
		bd, err := dense.LearnWeights(p.Objective)
		if err != nil {
			t.Fatal(err)
		}
		// Identical FISTA recursions on differently-rounded gradients:
		// the iterates track each other far inside the 1e-6 band FISTA
		// itself converges to.
		for j := range bd {
			if math.Abs(bf[j]-bd[j]) > 1e-6 {
				t.Fatalf("trial %d: PG β differs: gram %v dense %v", trial, bf, bd)
			}
		}
	}
}
