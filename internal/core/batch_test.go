package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestEngineBatchBitIdentical pins the serving contract: without a
// retained DM or fallback the fused batch redistribution must be
// bitwise identical to per-call Align — including partial tail chunks,
// multiple workers, and chunk counts around the redistChunk boundary.
func TestEngineBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{1, redistChunk - 1, redistChunk, redistChunk + 1, 3*redistChunk + 5} {
		for _, workers := range []int{1, 3} {
			p := engineProblem(rng, 60, 13, 5)
			e, err := NewEngine(p.References, Options{})
			if err != nil {
				t.Fatal(err)
			}
			objectives := make([][]float64, n)
			for a := range objectives {
				obj := make([]float64, 60)
				for i := range obj {
					obj[i] = rng.Float64() * 50
				}
				objectives[a] = obj
			}
			batch, err := e.AlignAll(objectives, workers)
			if err != nil {
				t.Fatal(err)
			}
			for a, obj := range objectives {
				want, err := e.Align(obj)
				if err != nil {
					t.Fatal(err)
				}
				resultsClose(t, fmt.Sprintf("n=%d workers=%d objective %d", n, workers, a), batch[a], want, 0)
			}
		}
	}
}

// TestEngineAlignContextCancelled checks the single-call cancellation
// points: a cancelled context yields ctx.Err() and no result.
func TestEngineAlignContextCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := engineProblem(rng, 20, 6, 3)
	e, err := NewEngine(p.References, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.AlignContext(ctx, p.Objective)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled AlignContext returned a result")
	}
	// And the uncancelled call matches plain Align bit for bit.
	got, err := e.AlignContext(context.Background(), p.Objective)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Align(p.Objective)
	if err != nil {
		t.Fatal(err)
	}
	resultsClose(t, "uncancelled context", got, want, 0)
}

// TestEngineAlignAllContextCancelled checks the batch cancellation
// contract: a cancelled context returns ctx.Err() partial-free, both
// when cancelled up front and when cancelled mid-flight.
func TestEngineAlignAllContextCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := engineProblem(rng, 200, 20, 4)
	e, err := NewEngine(p.References, Options{})
	if err != nil {
		t.Fatal(err)
	}
	objectives := make([][]float64, 6*redistChunk)
	for a := range objectives {
		obj := make([]float64, 200)
		for i := range obj {
			obj[i] = rng.Float64() * 10
		}
		objectives[a] = obj
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := e.AlignAllContext(ctx, objectives, 2)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if results != nil {
		t.Fatal("cancelled AlignAllContext returned results")
	}

	// Mid-flight: cancel concurrently. The call must either complete
	// fully or report the cancellation with no results at all.
	for trial := 0; trial < 20; trial++ {
		delay := time.Duration(rng.Intn(300)) * time.Microsecond
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(delay)
			cancel()
		}()
		results, err := e.AlignAllContext(ctx, objectives, 2)
		switch err {
		case nil:
			for a, r := range results {
				if r == nil {
					t.Fatalf("trial %d: completed batch missing result %d", trial, a)
				}
			}
		case context.Canceled:
			if results != nil {
				t.Fatalf("trial %d: cancelled batch returned results", trial)
			}
		default:
			t.Fatalf("trial %d: err = %v", trial, err)
		}
		cancel()
	}
}

// TestEngineAlignAllFastPathErrors mirrors TestEngineAlignAllError on
// the fused path with a tail chunk: invalid objectives are reported in
// input order while valid ones still align.
func TestEngineAlignAllFastPathErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	p := engineProblem(rng, 30, 8, 3)
	e, err := NewEngine(p.References, Options{})
	if err != nil {
		t.Fatal(err)
	}
	objectives := make([][]float64, redistChunk+3)
	for a := range objectives {
		objectives[a] = p.Objective
	}
	objectives[2] = make([]float64, 5) // wrong length
	objectives[redistChunk+1] = nil    // empty

	results, err := e.AlignAll(objectives, 2)
	if err == nil {
		t.Fatal("invalid objectives accepted")
	}
	if want := "objective 2"; !contains(err.Error(), want) {
		t.Errorf("err = %v, want mention of %q", err, want)
	}
	want, err2 := e.Align(p.Objective)
	if err2 != nil {
		t.Fatal(err2)
	}
	for a, r := range results {
		if a == 2 || a == redistChunk+1 {
			if r != nil {
				t.Errorf("invalid objective %d produced a result", a)
			}
			continue
		}
		if r == nil {
			t.Fatalf("valid objective %d not aligned", a)
		}
		resultsClose(t, fmt.Sprintf("objective %d", a), r, want, 0)
	}
}
