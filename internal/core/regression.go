package core

import (
	"geoalign/internal/linalg"
)

// NaiveRegression implements the approach §3.2 of the paper dismisses:
// model the objective's source aggregates as a non-negative linear
// combination of the references' source aggregates, then predict the
// target aggregates by applying the same coefficients to the
// references' target aggregates.
//
// The paper's objection is structural: the training rows (source units)
// and prediction rows (target units) are not samples from one
// population — they are different partitions of the same mass — so the
// regression has no reason to transfer, and nothing constrains the
// predictions to preserve the objective's total. This implementation
// exists to demonstrate that argument empirically (see the ablation in
// internal/eval and EXPERIMENTS.md): unlike GeoAlign it is not
// volume-preserving, and its error grows with how far the fitted
// combination's total drifts from the objective's.
func NaiveRegression(objective []float64, refs []Reference) ([]float64, error) {
	_, nt, err := validate(Problem{Objective: objective, References: refs})
	if err != nil {
		return nil, err
	}
	cols := make([][]float64, len(refs))
	tcols := make([][]float64, len(refs))
	for k, r := range refs {
		src := referenceSource(r)
		cols[k] = src
		tcols[k] = r.DM.ColSums()
	}
	a, err := linalg.MatrixFromColumns(cols)
	if err != nil {
		return nil, err
	}
	beta, err := linalg.NNLS(a, objective)
	if err != nil {
		return nil, err
	}
	out := make([]float64, nt)
	for k := range refs {
		if beta[k] == 0 {
			continue
		}
		for j := 0; j < nt; j++ {
			out[j] += beta[k] * tcols[k][j]
		}
	}
	return out, nil
}
