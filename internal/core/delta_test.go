package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"geoalign/internal/sparse"
)

// randDeltaRefs builds a random reference set mixing the two source
// conventions (explicit vector, DM-derived) with realistic sparsity:
// each source unit overlaps a handful of target units.
func randDeltaRefs(rng *rand.Rand, ns, nt, k int) []Reference {
	refs := make([]Reference, k)
	for r := 0; r < k; r++ {
		coo := sparse.NewCOO(ns, nt)
		for i := 0; i < ns; i++ {
			if rng.Float64() < 0.05 {
				continue // leave some rows empty: partial support
			}
			n := 1 + rng.Intn(3)
			used := map[int]bool{}
			for t := 0; t < n; t++ {
				j := rng.Intn(nt)
				if used[j] {
					continue
				}
				used[j] = true
				coo.Add(i, j, 1+rng.Float64()*100)
			}
		}
		ref := Reference{Name: fmt.Sprintf("ref%d", r), DM: coo.ToCSR()}
		if r%2 == 1 {
			src := make([]float64, ns)
			for i := range src {
				src[i] = rng.Float64() * 50
			}
			ref.Source = src
		}
		refs[r] = ref
	}
	return refs
}

// randDelta builds a random well-formed delta against the given
// references: a mix of value-only upserts, structural upserts, row
// deletes and source revisions.
func randDelta(rng *rand.Rand, refs []Reference, ns, nt int) Delta {
	var d Delta
	usedRow := map[[2]int]bool{}
	for n := 1 + rng.Intn(3); n > 0; n-- {
		p := RowPatch{Ref: rng.Intn(len(refs)), Row: rng.Intn(ns)}
		if usedRow[[2]int{p.Ref, p.Row}] {
			continue
		}
		usedRow[[2]int{p.Ref, p.Row}] = true
		switch rng.Intn(3) {
		case 0: // value-only: keep the row's column set
			cols, _ := refs[p.Ref].DM.Row(p.Row)
			p.Cols = append([]int(nil), cols...)
			p.Vals = make([]float64, len(cols))
			for t := range p.Vals {
				p.Vals[t] = rng.Float64() * 200
			}
		case 1: // structural: a fresh column set
			n := rng.Intn(4)
			used := map[int]bool{}
			for t := 0; t < n; t++ {
				j := rng.Intn(nt)
				if used[j] {
					continue
				}
				used[j] = true
				p.Cols = append(p.Cols, j)
			}
			insertionSortInts(p.Cols)
			p.Vals = make([]float64, len(p.Cols))
			for t := range p.Vals {
				p.Vals[t] = rng.Float64() * 200
			}
		default:
			p.Delete = true
		}
		d.RowPatches = append(d.RowPatches, p)
	}
	usedSrc := map[[2]int]bool{}
	for n := rng.Intn(3); n > 0; n-- {
		p := SourcePatch{Ref: rng.Intn(len(refs)), Row: rng.Intn(ns), Value: rng.Float64() * 400}
		if usedSrc[[2]int{p.Ref, p.Row}] {
			continue
		}
		usedSrc[[2]int{p.Ref, p.Row}] = true
		d.SourcePatches = append(d.SourcePatches, p)
	}
	return d
}

// applyToRefs is the reference implementation the harness rebuilds
// from: it applies the delta to deep copies of the references by brute
// force, independent of every incremental path in ApplyDelta.
func applyToRefs(refs []Reference, d Delta) []Reference {
	out := make([]Reference, len(refs))
	for i, r := range refs {
		out[i] = Reference{Name: r.Name, DM: r.DM.Clone()}
		if r.Source != nil {
			out[i].Source = append([]float64(nil), r.Source...)
		}
	}
	byRef := map[int][]RowPatch{}
	for _, p := range d.RowPatches {
		byRef[p.Ref] = append(byRef[p.Ref], p)
	}
	for r, patches := range byRef {
		old := out[r].DM
		replaced := map[int]RowPatch{}
		for _, p := range patches {
			replaced[p.Row] = p
		}
		coo := sparse.NewCOO(old.Rows, old.Cols)
		for i := 0; i < old.Rows; i++ {
			if p, ok := replaced[i]; ok {
				for t, c := range p.Cols {
					coo.Add(i, c, p.Vals[t])
				}
				continue
			}
			cols, vals := old.Row(i)
			for t, c := range cols {
				coo.Add(i, c, vals[t])
			}
		}
		out[r].DM = coo.ToCSR()
	}
	for _, p := range d.SourcePatches {
		if out[p.Ref].Source == nil {
			out[p.Ref].Source = out[p.Ref].DM.RowSums()
		}
		out[p.Ref].Source[p.Row] = p.Value
	}
	return out
}

func closeTo(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func vecsClose(t *testing.T, what string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", what, len(got), len(want))
	}
	for i := range got {
		if !closeTo(got[i], want[i], tol) {
			t.Fatalf("%s[%d]: %g (incremental) vs %g (rebuild)", what, i, got[i], want[i])
		}
	}
}

// checkEquivalence asserts the incremental engine matches one rebuilt
// from scratch on the same (patched) references: shared precompute
// bit-identical, weights and estimates within 1e-9.
func checkEquivalence(t *testing.T, trial int, inc, rebuilt *Engine, objective []float64) {
	t.Helper()
	if !bitEqual(inc.weightMat.Data, rebuilt.weightMat.Data) {
		t.Fatalf("trial %d: design matrices differ bitwise", trial)
	}
	if !intsEqual(inc.pat.IndPtr, rebuilt.pat.IndPtr) || !intsEqual(inc.pat.ColIdx, rebuilt.pat.ColIdx) {
		t.Fatalf("trial %d: union patterns differ", trial)
	}
	for kk := range inc.refs {
		if !intsEqual(inc.slots[kk], rebuilt.slots[kk]) {
			t.Fatalf("trial %d: slot map %d differs", trial, kk)
		}
		if !bitEqual(inc.rowSums[kk], rebuilt.rowSums[kk]) {
			t.Fatalf("trial %d: row sums %d differ bitwise", trial, kk)
		}
		if inc.maxRow[kk] != rebuilt.maxRow[kk] {
			t.Fatalf("trial %d: max row sum %d differs", trial, kk)
		}
		if !intsEqual(inc.refs[kk].DM.IndPtr, rebuilt.refs[kk].DM.IndPtr) ||
			!intsEqual(inc.refs[kk].DM.ColIdx, rebuilt.refs[kk].DM.ColIdx) ||
			!bitEqual(inc.refs[kk].DM.Val, rebuilt.refs[kk].DM.Val) {
			t.Fatalf("trial %d: reference %d crosswalk differs", trial, kk)
		}
	}
	for i := range inc.zeroRow {
		if inc.zeroRow[i] != rebuilt.zeroRow[i] {
			t.Fatalf("trial %d: zero-row mask differs at %d", trial, i)
		}
	}
	gi, gr := inc.gram.Gram(), rebuilt.gram.Gram()
	for i := range gi.Data {
		if !closeTo(gi.Data[i], gr.Data[i], 1e-9) {
			t.Fatalf("trial %d: Gram[%d]: %g vs %g", trial, i, gi.Data[i], gr.Data[i])
		}
	}
	if inc.gram.AInf != rebuilt.gram.AInf {
		t.Fatalf("trial %d: ‖A‖∞ %g vs %g", trial, inc.gram.AInf, rebuilt.gram.AInf)
	}

	ri, err := inc.Align(objective)
	if err != nil {
		t.Fatalf("trial %d: incremental align: %v", trial, err)
	}
	rr, err := rebuilt.Align(objective)
	if err != nil {
		t.Fatalf("trial %d: rebuilt align: %v", trial, err)
	}
	vecsClose(t, fmt.Sprintf("trial %d weights", trial), ri.Weights, rr.Weights, 1e-9)
	vecsClose(t, fmt.Sprintf("trial %d target", trial), ri.Target, rr.Target, 1e-9)
}

// TestApplyDeltaRebuildEquivalence is the headline harness: randomized
// delta sequences applied incrementally must match a from-scratch
// rebuild on the patched references within 1e-9 — weights, estimates,
// and the shared precompute (pattern, slots, design matrix, row sums)
// bit-identically. Trials run in parallel so `go test -race` also
// exercises concurrent construction, and each chain step aligns on the
// parent while ApplyDelta derives the child (live traffic during
// maintenance).
func TestApplyDeltaRebuildEquivalence(t *testing.T) {
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seq%03d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(9000 + trial)))
			ns := 30 + rng.Intn(90)
			nt := 8 + rng.Intn(24)
			k := 2 + rng.Intn(5)
			refs := randDeltaRefs(rng, ns, nt, k)
			opts := Options{}
			if trial%4 == 0 {
				opts.KeepDM = true
			}
			eng, err := NewEngine(refs, opts)
			if err != nil {
				t.Fatal(err)
			}
			objective := make([]float64, ns)
			for i := range objective {
				objective[i] = rng.Float64() * 1000
			}

			steps := 1 + rng.Intn(4)
			cur := eng
			curRefs := refs
			for s := 0; s < steps; s++ {
				d := randDelta(rng, curRefs, ns, nt)

				// Live traffic on the parent while the child derives.
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := cur.Align(objective); err != nil {
						t.Errorf("step %d: concurrent align: %v", s, err)
					}
				}()
				next, err := cur.ApplyDelta(d)
				wg.Wait()
				if err != nil {
					t.Fatalf("step %d: ApplyDelta: %v", s, err)
				}
				cur = next
				curRefs = applyToRefs(curRefs, d)
			}

			rebuilt, err := NewEngine(curRefs, opts)
			if err != nil {
				t.Fatal(err)
			}
			checkEquivalence(t, trial, cur, rebuilt, objective)
		})
	}
}

// TestApplyDeltaParentUnchanged pins the copy-on-write contract: the
// parent engine's results are bitwise identical before and after a
// delta is derived from it, including structural patches.
func TestApplyDeltaParentUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	refs := randDeltaRefs(rng, 60, 15, 4)
	eng, err := NewEngine(refs, Options{KeepDM: true})
	if err != nil {
		t.Fatal(err)
	}
	objective := make([]float64, 60)
	for i := range objective {
		objective[i] = rng.Float64() * 100
	}
	before, err := eng.Align(objective)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 10; step++ {
		if _, err := eng.ApplyDelta(randDelta(rng, refs, 60, 15)); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	after, err := eng.Align(objective)
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(before.Weights, after.Weights) || !bitEqual(before.Target, after.Target) {
		t.Fatal("parent results changed after deriving deltas")
	}
	if !sparse.Equal(before.DM, after.DM, 0) {
		t.Fatal("parent estimated crosswalk changed after deriving deltas")
	}
}

// TestApplyDeltaZeroSupport drives a source unit out of every
// reference's support and back, checking the Eq. 14 degenerate mask
// follows.
func TestApplyDeltaZeroSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	ns, nt := 40, 10
	refs := randDeltaRefs(rng, ns, nt, 3)
	eng, err := NewEngine(refs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	row := 7
	var del Delta
	for r := range refs {
		del.RowPatches = append(del.RowPatches, RowPatch{Ref: r, Row: row, Delete: true})
	}
	dropped, err := eng.ApplyDelta(del)
	if err != nil {
		t.Fatal(err)
	}
	if !dropped.ZeroSupportRows()[row] {
		t.Fatal("row deleted from every reference should be zero-support")
	}
	restore := Delta{RowPatches: []RowPatch{{Ref: 0, Row: row, Cols: []int{2, 5}, Vals: []float64{3, 4}}}}
	back, err := dropped.ApplyDelta(restore)
	if err != nil {
		t.Fatal(err)
	}
	if back.ZeroSupportRows()[row] {
		t.Fatal("row restored to a reference should regain support")
	}
	// And the full rebuild agrees end to end.
	objective := make([]float64, ns)
	for i := range objective {
		objective[i] = rng.Float64() * 10
	}
	rebuilt, err := NewEngine(applyToRefs(applyToRefs(refs, del), restore), Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, 0, back, rebuilt, objective)
}

func TestApplyDeltaValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	refs := randDeltaRefs(rng, 20, 8, 3)
	eng, err := NewEngine(refs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		d    Delta
	}{
		{"empty", Delta{}},
		{"ref out of range", Delta{RowPatches: []RowPatch{{Ref: 3, Row: 0, Delete: true}}}},
		{"negative ref", Delta{RowPatches: []RowPatch{{Ref: -1, Row: 0, Delete: true}}}},
		{"row out of range", Delta{RowPatches: []RowPatch{{Ref: 0, Row: 20, Delete: true}}}},
		{"delete with cols", Delta{RowPatches: []RowPatch{{Ref: 0, Row: 0, Delete: true, Cols: []int{1}, Vals: []float64{1}}}}},
		{"ragged cols/vals", Delta{RowPatches: []RowPatch{{Ref: 0, Row: 0, Cols: []int{1, 2}, Vals: []float64{1}}}}},
		{"unsorted cols", Delta{RowPatches: []RowPatch{{Ref: 0, Row: 0, Cols: []int{3, 1}, Vals: []float64{1, 2}}}}},
		{"duplicate cols", Delta{RowPatches: []RowPatch{{Ref: 0, Row: 0, Cols: []int{2, 2}, Vals: []float64{1, 2}}}}},
		{"col out of range", Delta{RowPatches: []RowPatch{{Ref: 0, Row: 0, Cols: []int{8}, Vals: []float64{1}}}}},
		{"negative value", Delta{RowPatches: []RowPatch{{Ref: 0, Row: 0, Cols: []int{1}, Vals: []float64{-1}}}}},
		{"NaN value", Delta{RowPatches: []RowPatch{{Ref: 0, Row: 0, Cols: []int{1}, Vals: []float64{math.NaN()}}}}},
		{"Inf value", Delta{RowPatches: []RowPatch{{Ref: 0, Row: 0, Cols: []int{1}, Vals: []float64{math.Inf(1)}}}}},
		{"duplicate row patch", Delta{RowPatches: []RowPatch{
			{Ref: 1, Row: 4, Delete: true},
			{Ref: 1, Row: 4, Cols: []int{0}, Vals: []float64{1}},
		}}},
		{"source ref out of range", Delta{SourcePatches: []SourcePatch{{Ref: 5, Row: 0, Value: 1}}}},
		{"source row out of range", Delta{SourcePatches: []SourcePatch{{Ref: 0, Row: -1, Value: 1}}}},
		{"source NaN", Delta{SourcePatches: []SourcePatch{{Ref: 0, Row: 0, Value: math.NaN()}}}},
		{"source negative", Delta{SourcePatches: []SourcePatch{{Ref: 0, Row: 0, Value: -2}}}},
		{"duplicate source patch", Delta{SourcePatches: []SourcePatch{
			{Ref: 2, Row: 1, Value: 1},
			{Ref: 2, Row: 1, Value: 2},
		}}},
	}
	for _, tc := range cases {
		if _, err := eng.ApplyDelta(tc.d); !errors.Is(err, ErrBadDelta) {
			t.Errorf("%s: got err %v, want ErrBadDelta", tc.name, err)
		}
	}
}

// TestApplyDeltaSnapshotParent derives a delta from a snapshot-backed
// engine, closes the parent (as the serving registry does once the old
// generation drains), and checks the child still matches a rebuild —
// i.e. nothing in the child aliases the unmapped file.
func TestApplyDeltaSnapshotParent(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	ns, nt := 50, 12
	refs := randDeltaRefs(rng, ns, nt, 4)
	built, err := NewEngine(refs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	built.PrecomputeSolverCaches()
	path := filepath.Join(t.TempDir(), "eng.snap")
	if err := built.WriteSnapshotFile(path, nil); err != nil {
		t.Fatal(err)
	}
	parent, _, err := LoadSnapshot(path, Options{})
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 10; trial++ {
		d := randDelta(rng, refs, ns, nt)
		child, err := parent.ApplyDelta(d)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if child.FromSnapshot() {
			t.Fatal("delta-derived engine must not be snapshot-backed")
		}
		// Tear the parent's mapping out from under the child.
		if err := parent.Close(); err != nil {
			t.Fatal(err)
		}
		objective := make([]float64, ns)
		for i := range objective {
			objective[i] = rng.Float64() * 100
		}
		rebuilt, err := NewEngine(applyToRefs(refs, d), Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkEquivalence(t, trial, child, rebuilt, objective)
		// Remap for the next trial (Close is idempotent; reopen fresh).
		parent, _, err = LoadSnapshot(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
	}
	parent.Close()
}

// TestNormSrcExtractionRace is the regression test for the data race
// between the lazy normSrc extraction (first AlignWithSources on a
// snapshot-loaded or delta-derived engine) and PrecomputeBytes, which
// the serving registry polls concurrently. Run with -race.
func TestNormSrcExtractionRace(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	ns, nt := 40, 10
	refs := randDeltaRefs(rng, ns, nt, 3)
	built, err := NewEngine(refs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "eng.snap")
	if err := built.WriteSnapshotFile(path, nil); err != nil {
		t.Fatal(err)
	}
	eng, _, err := LoadSnapshot(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	objective := make([]float64, ns)
	overrides := make([][]float64, 3)
	src := make([]float64, ns)
	for i := range objective {
		objective[i] = rng.Float64() * 10
		src[i] = rng.Float64() * 5
	}
	overrides[1] = src

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if w%2 == 0 {
					eng.PrecomputeBytes()
				} else if _, err := eng.AlignWithSources(objective, overrides); err != nil {
					t.Errorf("AlignWithSources: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// The delta path must coexist with the lazy extraction too.
	child, err := eng.ApplyDelta(Delta{SourcePatches: []SourcePatch{{Ref: 0, Row: 1, Value: 7}}})
	if err != nil {
		t.Fatal(err)
	}
	var wg2 sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			for i := 0; i < 50; i++ {
				if w%2 == 0 {
					child.PrecomputeBytes()
				} else if _, err := child.AlignWithSources(objective, overrides); err != nil {
					t.Errorf("child AlignWithSources: %v", err)
					return
				}
			}
		}()
	}
	wg2.Wait()
}
