// Package core implements the paper's contribution: the GeoAlign
// multi-reference crosswalk algorithm (Algorithm 1), together with the
// baselines it is evaluated against — the areal weighting method and
// the single-reference dasymetric method.
//
// All three are "extensive" two-step approximators (§3.1): they
// disaggregate the objective attribute's source-unit aggregates into
// the source×target intersection units (here represented directly as a
// disaggregation matrix) and then re-aggregate by target unit. All
// three preserve volume (Eq. 10/16): each row of the estimated
// disaggregation matrix sums to the corresponding source aggregate,
// except for rows where every reference is zero, which the paper
// defines to be zero (Eq. 14, second case).
package core

import (
	"errors"
	"fmt"

	"geoalign/internal/linalg"
	"geoalign/internal/sparse"
)

// Reference is a reference attribute: its aggregate vector over the
// source units and its (true) disaggregation matrix between source and
// target units. If Source is nil it is derived from DM's row sums,
// which is the self-consistent choice; providing Source explicitly
// models the paper's setting where the published source aggregates may
// disagree slightly (or, in §4.4.1, noisily) with the crosswalk file.
// The Source vector feeds weight learning (Eq. 15); the disaggregation
// step (Eq. 14) always scales against the crosswalk's own row sums so
// Eq. (16) holds exactly.
type Reference struct {
	Name   string
	Source []float64   // length |U^s|; nil ⇒ DM.RowSums()
	DM     *sparse.CSR // |U^s| × |U^t|
}

// Problem is one crosswalk task: realign the objective attribute's
// source aggregates onto the target units using the references.
type Problem struct {
	Objective  []float64 // a_o^s, length |U^s|
	References []Reference
}

// Result carries the estimate and the model internals useful for
// diagnostics and the paper's robustness analyses.
type Result struct {
	Target  []float64   // â_o^t, length |U^t|
	Weights []float64   // β, length |references|; sums to 1
	DM      *sparse.CSR // estimated disaggregation matrix of the objective
}

// Errors returned by validation.
var (
	ErrNoReferences  = errors.New("core: no reference attributes")
	ErrNoSourceUnits = errors.New("core: objective has no source units")
)

// Options tunes GeoAlign behaviour. The zero value reproduces the
// paper's algorithm.
type Options struct {
	// KeepDM retains the estimated disaggregation matrix in the Result.
	// It is cheap (the matrix is built anyway) but callers crosswalking
	// many attributes may prefer to drop it.
	KeepDM bool
	// SolverIterations, if positive, switches weight learning to the
	// projected-gradient solver with the given iteration budget instead
	// of the active-set solver. Mainly useful for experimentation.
	SolverIterations int
	// FallbackDM, if set, redistributes the aggregates of source units
	// where every reference is zero (the Eq. 14 degenerate case, which
	// the paper drops) according to this crosswalk instead — typically
	// the intersection-area matrix, turning the degenerate case into
	// areal weighting rather than losing the mass. It must be
	// |U^s|×|U^t| shaped.
	FallbackDM *sparse.CSR
	// DenseSolver forces weight learning through the original dense
	// solvers (tall augmented system, QR-based NNLS inner solves)
	// instead of the cached normal-equations fast path. The two agree
	// to ~1e-9 relative; the dense path is kept as a numerical
	// cross-check and escape hatch.
	DenseSolver bool
}

// Align runs GeoAlign (Algorithm 1): weight learning (Eq. 15),
// disaggregation (Eq. 14), re-aggregation (Eq. 17).
//
// The Eq. 14 numerator is Σ_k β_k·DM'_rk with each reference crosswalk
// normalised by its largest source aggregate, matching the
// max-normalisation of the weight-learning step ("the magnitude of the
// references should not be a contributing factor", §3.4) — without it,
// Eq. (14) as printed would let a large-valued reference dominate the
// share mixture regardless of β. The denominator per source unit i is
// the numerator's own row sum rather than any separately published
// source vector — the consistent reading of Eq. (14): it makes the
// volume-preserving property (Eq. 16) hold exactly, and it is what
// keeps GeoAlign robust when the published source aggregates are noisy
// (§4.4.1): noise then only perturbs the learned weights.
//
// Align is a thin wrapper that builds a single-use Engine; callers
// crosswalking many attributes over the same references should build
// the Engine once with NewEngine and use Align/AlignAll on it, which
// amortises the crosswalk precomputation across attributes.
func Align(p Problem, opts Options) (*Result, error) {
	if _, _, err := validate(p); err != nil {
		return nil, err
	}
	e, err := NewEngine(p.References, opts)
	if err != nil {
		return nil, err
	}
	return e.Align(p.Objective)
}

// LearnWeights performs only GeoAlign's weight-learning step and
// returns β. Exposed separately for the robustness experiments that
// inspect the learned weights.
func LearnWeights(p Problem, opts Options) ([]float64, error) {
	if _, _, err := validate(p); err != nil {
		return nil, err
	}
	cols := make([][]float64, len(p.References))
	for k, r := range p.References {
		cols[k] = maxNormalise(referenceSource(r))
	}
	a, err := linalg.MatrixFromColumns(cols)
	if err != nil {
		return nil, err
	}
	b := maxNormalise(p.Objective)
	if opts.DenseSolver {
		if opts.SolverIterations > 0 {
			return linalg.SimplexLeastSquaresPG(a, b, opts.SolverIterations, 0)
		}
		return linalg.SimplexLeastSquares(a, b)
	}
	// Route the one-shot solve through the same Gram-form code path the
	// Engine uses, so the two produce bit-identical weights.
	gs := linalg.NewGramSystem(a)
	if opts.SolverIterations > 0 {
		return gs.SimplexLSPG(b, opts.SolverIterations, 0)
	}
	return gs.SimplexLS(b, nil)
}

// referenceSource returns the reference's source aggregate vector,
// deriving it from the disaggregation matrix when absent.
func referenceSource(r Reference) []float64 {
	if r.Source != nil {
		return r.Source
	}
	return r.DM.RowSums()
}

// maxNormalise returns v / max(v) (a fresh slice); an all-zero vector
// normalises to itself.
func maxNormalise(v []float64) []float64 {
	out := make([]float64, len(v))
	maxNormaliseInto(out, v)
	return out
}

// maxNormaliseInto writes v / max(v) into dst, which must have length
// len(v); an all-zero vector normalises to zeros.
func maxNormaliseInto(dst, v []float64) {
	var mx float64
	for _, x := range v {
		if x > mx {
			mx = x
		}
	}
	if mx == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	for i, x := range v {
		dst[i] = x / mx
	}
}

func validate(p Problem) (ns, nt int, err error) {
	ns = len(p.Objective)
	if ns == 0 {
		return 0, 0, ErrNoSourceUnits
	}
	if len(p.References) == 0 {
		return 0, 0, ErrNoReferences
	}
	for k, r := range p.References {
		if r.DM == nil {
			return 0, 0, fmt.Errorf("core: reference %d (%s) has no disaggregation matrix", k, r.Name)
		}
	}
	nt = p.References[0].DM.Cols
	for k, r := range p.References {
		if r.DM.Rows != ns {
			return 0, 0, fmt.Errorf("core: reference %d (%s) DM has %d rows, objective has %d source units",
				k, r.Name, r.DM.Rows, ns)
		}
		if r.DM.Cols != nt {
			return 0, 0, fmt.Errorf("core: reference %d (%s) DM has %d cols, reference 0 has %d",
				k, r.Name, r.DM.Cols, nt)
		}
		if r.Source != nil && len(r.Source) != ns {
			return 0, 0, fmt.Errorf("core: reference %d (%s) source vector length %d, want %d",
				k, r.Name, len(r.Source), ns)
		}
	}
	return ns, nt, nil
}

// patchRows rebuilds dm with the listed rows replaced by the fallback
// crosswalk's rows, rescaled to the objective (dasymetric
// redistribution per degenerate unit). fbSums must be the fallback's
// row sums — engines cache them across calls (see fallbackSums); nil
// computes them fresh.
func patchRows(dm, fallback *sparse.CSR, fbSums []float64, rows []int, objective []float64) (*sparse.CSR, error) {
	replace := make(map[int]bool, len(rows))
	for _, i := range rows {
		replace[i] = true
	}
	if fbSums == nil {
		fbSums = fallback.RowSums()
	}
	coo := sparse.NewCOO(dm.Rows, dm.Cols)
	for i := 0; i < dm.Rows; i++ {
		if !replace[i] {
			cols, vals := dm.Row(i)
			for k, j := range cols {
				coo.Add(i, j, vals[k])
			}
			continue
		}
		if fbSums[i] == 0 {
			continue // even the fallback has no support: stay zero
		}
		f := objective[i] / fbSums[i]
		cols, vals := fallback.Row(i)
		for k, j := range cols {
			coo.Add(i, j, f*vals[k])
		}
	}
	return coo.ToCSR(), nil
}

// Dasymetric runs the single-reference dasymetric method: it
// redistributes each source aggregate across target units in proportion
// to the reference's disaggregation matrix row. Source units where the
// reference is zero contribute nothing (volume is not preserved there,
// matching the standard method's behaviour on unsupported units).
func Dasymetric(objective []float64, ref Reference) ([]float64, error) {
	if len(objective) == 0 {
		return nil, ErrNoSourceUnits
	}
	if ref.DM == nil {
		return nil, fmt.Errorf("core: dasymetric reference %q has no disaggregation matrix", ref.Name)
	}
	if ref.DM.Rows != len(objective) {
		return nil, fmt.Errorf("core: dasymetric reference %q DM has %d rows, objective has %d",
			ref.Name, ref.DM.Rows, len(objective))
	}
	rowTotals := ref.DM.RowSums()
	out := make([]float64, ref.DM.Cols)
	for i, ao := range objective {
		if ao == 0 || rowTotals[i] == 0 {
			continue
		}
		f := ao / rowTotals[i]
		cols, vals := ref.DM.Row(i)
		for k, j := range cols {
			out[j] += f * vals[k]
		}
	}
	return out, nil
}

// ArealWeighting runs the areal weighting baseline: dasymetric with the
// intersection areas as the reference (§3.3's "special case"). areaDM
// must contain the source×target intersection areas.
func ArealWeighting(objective []float64, areaDM *sparse.CSR) ([]float64, error) {
	return Dasymetric(objective, Reference{Name: "area", DM: areaDM})
}

// CheckVolumePreserving verifies Eq. (16) on an estimated disaggregation
// matrix: every row must sum to the source aggregate within tol, except
// rows the algorithm zeroed for lack of reference support (their source
// aggregate is redistributed nowhere and the row must be all zero).
// It returns the first violating row index, or -1.
func CheckVolumePreserving(dm *sparse.CSR, objective []float64, tol float64) int {
	sums := dm.RowSums()
	for i, s := range sums {
		d := s - objective[i]
		if d < 0 {
			d = -d
		}
		if d > tol && s != 0 {
			return i
		}
	}
	return -1
}
