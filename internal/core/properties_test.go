package core

// Additional algebraic property tests for the crosswalk algorithms.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"geoalign/internal/sparse"
)

// Dasymetric redistribution is linear in the objective vector.
func TestDasymetricLinearityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ns, nt := 5+rng.Intn(20), 2+rng.Intn(8)
		dm := randomDM(rng, ns, nt)
		x := make([]float64, ns)
		y := make([]float64, ns)
		for i := range x {
			x[i] = rng.Float64() * 10
			y[i] = rng.Float64() * 10
		}
		alpha := rng.Float64() * 3
		ref := Reference{DM: dm}
		px, err1 := Dasymetric(x, ref)
		py, err2 := Dasymetric(y, ref)
		comb := make([]float64, ns)
		for i := range comb {
			comb[i] = alpha*x[i] + y[i]
		}
		pc, err3 := Dasymetric(comb, ref)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for j := range pc {
			if math.Abs(pc[j]-(alpha*px[j]+py[j])) > 1e-9*(1+math.Abs(pc[j])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// With every reference sharing one crosswalk, GeoAlign reduces exactly
// to dasymetric with that crosswalk, whatever weights are learned.
func TestAlignIdenticalReferencesReduceToDasymetric(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dm := randomDM(rng, 25, 6)
	obj := make([]float64, 25)
	for i := range obj {
		obj[i] = rng.Float64() * 100
	}
	refs := []Reference{{Name: "a", DM: dm}, {Name: "b", DM: dm}, {Name: "c", DM: dm}}
	res, err := Align(Problem{Objective: obj, References: refs}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Dasymetric(obj, Reference{DM: dm})
	if err != nil {
		t.Fatal(err)
	}
	if !vecEq(res.Target, want, 1e-9*(1+floatMax(want))) {
		t.Errorf("Align = %v, dasymetric = %v", res.Target, want)
	}
}

// Duplicating a reference must not change the estimate: weight mass may
// split between the copies, but the induced disaggregation is the same.
func TestAlignDuplicateReferenceInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := Reference{Name: "a", DM: randomDM(rng, 30, 7)}
	b := Reference{Name: "b", DM: randomDM(rng, 30, 7)}
	obj := make([]float64, 30)
	for i := range obj {
		obj[i] = rng.Float64() * 50
	}
	r1, err := Align(Problem{Objective: obj, References: []Reference{a, b}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Align(Problem{Objective: obj, References: []Reference{a, b, b}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The duplicated reference's weight may be split arbitrarily between
	// its two copies, but the reconstructed share mixture — and hence
	// the estimate — must agree.
	if !vecEq(r1.Target, r2.Target, 1e-5*(1+floatMax(r1.Target))) {
		t.Errorf("duplicate reference changed estimate:\n%v\n%v", r1.Target, r2.Target)
	}
	if math.Abs((r2.Weights[1]+r2.Weights[2])-r1.Weights[1]) > 1e-5 {
		t.Errorf("combined duplicate weight %v != original %v",
			r2.Weights[1]+r2.Weights[2], r1.Weights[1])
	}
}

// Scaling every value of one reference by a positive constant leaves
// the estimate unchanged (the §3.4 normalisation requirement).
func TestAlignReferenceScaleInvarianceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ns, nt := 8+rng.Intn(20), 2+rng.Intn(6)
		a := randomDM(rng, ns, nt)
		b := randomDM(rng, ns, nt)
		obj := make([]float64, ns)
		for i := range obj {
			obj[i] = rng.Float64() * 20
		}
		r1, err := Align(Problem{Objective: obj, References: []Reference{{DM: a}, {DM: b}}}, Options{})
		if err != nil {
			return false
		}
		c := 1e-3 + rng.Float64()*1e6
		scaled := a.Clone().Scale(c)
		r2, err := Align(Problem{Objective: obj, References: []Reference{{DM: scaled}, {DM: b}}}, Options{})
		if err != nil {
			return false
		}
		return vecEq(r1.Target, r2.Target, 1e-6*(1+floatMax(r1.Target)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The degenerate all-references-zero problem returns an all-zero
// estimate rather than failing.
func TestAlignAllZeroReferences(t *testing.T) {
	dm := sparse.NewEmptyCSR(3, 2)
	res, err := Align(Problem{
		Objective:  []float64{1, 2, 3},
		References: []Reference{{DM: dm}},
	}, Options{KeepDM: true})
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range res.Target {
		if v != 0 {
			t.Errorf("Target[%d] = %v, want 0", j, v)
		}
	}
}

// A zero objective yields a zero estimate with any references.
func TestAlignZeroObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	res, err := Align(Problem{
		Objective:  make([]float64, 10),
		References: []Reference{{DM: randomDM(rng, 10, 4)}},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range res.Target {
		if v != 0 {
			t.Errorf("Target[%d] = %v, want 0", j, v)
		}
	}
}

// Negative entries in the objective are passed through proportionally:
// the method is share-based and sign-agnostic per source unit (the
// paper's attributes are counts, but nothing in the algebra requires
// it; volume is still preserved).
func TestAlignNegativeObjectiveVolumePreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	dm := randomDM(rng, 8, 3)
	obj := []float64{5, -2, 3, 0, -1, 4, 2, 1}
	res, err := Align(Problem{Objective: obj, References: []Reference{{DM: dm}}}, Options{KeepDM: true})
	if err != nil {
		t.Fatal(err)
	}
	sums := res.DM.RowSums()
	for i := range obj {
		if math.Abs(sums[i]-obj[i]) > 1e-9 {
			t.Errorf("row %d: %v != %v", i, sums[i], obj[i])
		}
	}
}

// With a fallback crosswalk, degenerate source units redistribute by it
// instead of dropping their mass.
func TestAlignFallbackDM(t *testing.T) {
	dm0 := mustCSR(t, [][]float64{{1, 1}, {0, 0}})
	area := mustCSR(t, [][]float64{{5, 5}, {2, 8}})
	res, err := Align(Problem{
		Objective:  []float64{10, 20},
		References: []Reference{{DM: dm0}},
	}, Options{KeepDM: true, FallbackDM: area})
	if err != nil {
		t.Fatal(err)
	}
	// Unit 0 splits 5/5 by the reference; unit 1 falls back to area 2:8.
	want := []float64{5 + 4, 5 + 16}
	if !vecEq(res.Target, want, 1e-9) {
		t.Errorf("target = %v, want %v", res.Target, want)
	}
	if i := CheckVolumePreserving(res.DM, []float64{10, 20}, 1e-9); i >= 0 {
		t.Errorf("volume broken at row %d", i)
	}
}

// A fallback with zero support in the degenerate unit still drops it.
func TestAlignFallbackDMNoSupport(t *testing.T) {
	dm0 := mustCSR(t, [][]float64{{1, 1}, {0, 0}})
	fb := mustCSR(t, [][]float64{{1, 0}, {0, 0}})
	res, err := Align(Problem{
		Objective:  []float64{10, 20},
		References: []Reference{{DM: dm0}},
	}, Options{FallbackDM: fb})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range res.Target {
		total += v
	}
	if total != 10 {
		t.Errorf("total = %v, want 10", total)
	}
}

// A mis-shaped fallback is rejected.
func TestAlignFallbackDMShapeError(t *testing.T) {
	dm0 := mustCSR(t, [][]float64{{1, 1}, {0, 0}})
	fb := mustCSR(t, [][]float64{{1, 1, 1}, {1, 1, 1}})
	if _, err := Align(Problem{
		Objective:  []float64{10, 20},
		References: []Reference{{DM: dm0}},
	}, Options{FallbackDM: fb}); err == nil {
		t.Error("mis-shaped fallback accepted")
	}
	// But an unused mis-shaped fallback (no degenerate rows) is ignored.
	if _, err := Align(Problem{
		Objective:  []float64{10, 20},
		References: []Reference{{DM: mustCSR(t, [][]float64{{1, 1}, {2, 2}})}},
	}, Options{FallbackDM: fb}); err != nil {
		t.Errorf("unused fallback rejected: %v", err)
	}
}
