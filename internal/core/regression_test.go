package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestNaiveRegressionExactWhenObjectiveIsAReference(t *testing.T) {
	// If the objective is exactly one reference's source vector, the
	// regression recovers β = e_k and predicts that reference's target
	// vector — the one case where it works.
	rng := rand.New(rand.NewSource(21))
	a := Reference{Name: "a", DM: randomDM(rng, 30, 6)}
	b := Reference{Name: "b", DM: randomDM(rng, 30, 6)}
	obj := a.DM.RowSums()
	got, err := NaiveRegression(obj, []Reference{a, b})
	if err != nil {
		t.Fatal(err)
	}
	want := a.DM.ColSums()
	if !vecEq(got, want, 1e-6*(1+floatMax(want))) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestNaiveRegressionDoesNotConserveMass(t *testing.T) {
	// The paper's §3.2 argument: an objective that no reference
	// combination fits has its *total* mangled by the regression, while
	// GeoAlign conserves it by construction.
	rng := rand.New(rand.NewSource(22))
	refs := []Reference{
		{DM: randomDM(rng, 40, 8)},
		{DM: randomDM(rng, 40, 8)},
	}
	// Objective concentrated on a handful of units — poorly spanned by
	// the smooth references.
	obj := make([]float64, 40)
	obj[3], obj[17], obj[31] = 500, 900, 250
	totalIn := 500.0 + 900 + 250

	reg, err := NaiveRegression(obj, refs)
	if err != nil {
		t.Fatal(err)
	}
	ga, err := Align(Problem{Objective: obj, References: refs}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := func(v []float64) float64 {
		var s float64
		for _, x := range v {
			s += x
		}
		return s
	}
	gaErr := math.Abs(sum(ga.Target) - totalIn)
	regErr := math.Abs(sum(reg) - totalIn)
	if gaErr > 1e-6*totalIn {
		t.Fatalf("GeoAlign broke mass conservation: %v", gaErr)
	}
	if regErr < 1e-3*totalIn {
		t.Fatalf("naive regression conserved mass (%v vs %v) — the ablation premise fails",
			sum(reg), totalIn)
	}
}

func TestNaiveRegressionValidation(t *testing.T) {
	if _, err := NaiveRegression(nil, nil); err == nil {
		t.Error("empty inputs accepted")
	}
	rng := rand.New(rand.NewSource(23))
	if _, err := NaiveRegression([]float64{1, 2}, []Reference{{DM: randomDM(rng, 3, 2)}}); err == nil {
		t.Error("shape mismatch accepted")
	}
}
