// The fused batch alignment path. AlignAllContext processes objectives
// in chunks of redistChunk attributes so the dominant cost of a batch —
// streaming every reference crosswalk during the transpose-form
// redistribution (see redistributeTargets) — is paid once per chunk
// instead of once per attribute: each stored crosswalk entry is loaded
// once and multiplied against the whole chunk's row scales while it is
// in register.
//
// The fusion is bit-identical to per-attribute Align. For every output
// element the additions happen in exactly the order of the single-call
// path: the denominator combines references in index order, each
// reference's transpose product accumulates rows in ascending order
// (the chunk dimension is independent — it widens the inner loop
// without reordering any one attribute's sums), and the per-reference
// products fold into the target in reference order.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"geoalign/internal/linalg"
)

// redistChunk is how many attributes one fused redistribution pass
// carries: every crosswalk entry loaded from memory feeds this many
// multiply-adds. Wide enough to amortise the streaming, narrow enough
// that the per-entry scale and accumulator blocks stay in L1.
const redistChunk = 16

// batchChunk bounds the normalised-objective buffers of batchGramPrep:
// objectives run through the AᵀB product this many columns at a time.
const batchChunk = 32

// batchScratch is the per-worker state of one fused chunk. Scales and
// accumulators are laid out attribute-minor ([row*B+t], [col*B+t]) so
// the fused inner loops touch consecutive memory.
type batchScratch struct {
	w     []float64 // redistChunk × k scaled weights, attribute-major
	scale []float64 // ns × redistChunk per-row disaggregation factors
	y     []float64 // nt × redistChunk transpose-product accumulators
}

func newBatchScratch(e *Engine) *batchScratch {
	return &batchScratch{
		w:     make([]float64, redistChunk*len(e.refs)),
		scale: make([]float64, e.ns*redistChunk),
		y:     make([]float64, e.nt*redistChunk),
	}
}

// AlignAllContext is AlignAll with cancellation. The context is checked
// between worker chunks (each chunk covers up to redistChunk
// attributes) and inside the shared AᵀB preparation; once it is
// cancelled no further chunk starts and the call returns ctx.Err()
// with no results, since a partially aligned batch is not meaningful.
func (e *Engine) AlignAllContext(ctx context.Context, objectives [][]float64, workers int) ([]*Result, error) {
	n := len(objectives)
	results := make([]*Result, n)
	if n == 0 {
		return results, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	errs := make([]error, n)
	valid := make([]int, 0, n)
	for i, obj := range objectives {
		if err := e.checkObjective(obj); err != nil {
			errs[i] = err
			continue
		}
		valid = append(valid, i)
	}

	// The shared AᵀB prep only pays off on the cached Gram path with a
	// genuine mixture to learn; k == 1 and the dense escape hatch run
	// the plain per-objective solve.
	k := len(e.refs)
	useGram := !e.opts.DenseSolver && k > 1
	var cs []float64
	var bnorms []float64
	if useGram {
		cs = make([]float64, n*k)
		bnorms = make([]float64, n)
		if err := e.batchGramPrep(ctx, objectives, valid, cs, bnorms); err != nil {
			return nil, err
		}
	}

	nChunks := (len(valid) + redistChunk - 1) / redistChunk
	if workers > nChunks {
		workers = nChunks
	}

	// processChunk solves the chunk's weights (warm-started down the
	// worker's chain) and redistributes the successfully solved
	// attributes in one fused pass. Returns the last successful β to
	// seed the next chunk.
	processChunk := func(ci int, warm []float64, s *engineScratch, bs *batchScratch) []float64 {
		lo := ci * redistChunk
		hi := min(lo+redistChunk, len(valid))
		idxs := valid[lo:hi]
		betas := make([][]float64, len(idxs))
		for t, i := range idxs {
			var beta []float64
			var err error
			if useGram {
				beta, err = e.solvePrepared(cs[i*k:(i+1)*k], bnorms[i], warm)
			} else {
				beta, err = e.learnWeights(objectives[i], nil, s, warm)
			}
			if err != nil {
				errs[i] = err
				continue
			}
			betas[t] = beta
			warm = beta
		}
		e.redistributeBatch(objectives, idxs, betas, results, errs, s, bs)
		return warm
	}

	if workers <= 1 {
		s := e.scratch.Get().(*engineScratch)
		bs := e.batch.Get().(*batchScratch)
		var warm []float64
		for ci := 0; ci < nChunks; ci++ {
			if ctx.Err() != nil {
				break
			}
			warm = processChunk(ci, warm, s, bs)
		}
		e.scratch.Put(s)
		e.batch.Put(bs)
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := e.scratch.Get().(*engineScratch)
				bs := e.batch.Get().(*batchScratch)
				defer e.scratch.Put(s)
				defer e.batch.Put(bs)
				var warm []float64
				for {
					if ctx.Err() != nil {
						return
					}
					ci := int(next.Add(1)) - 1
					if ci >= nChunks {
						return
					}
					warm = processChunk(ci, warm, s, bs)
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("core: objective %d: %w", i, err)
		}
	}
	return results, nil
}

// solvePrepared runs the weight-learning solve with the right-hand side
// pre-reduced as c = Aᵀb and ‖b‖₂; warm optionally seeds the active-set
// solver with the previous objective's β.
func (e *Engine) solvePrepared(c []float64, bnorm float64, warm []float64) ([]float64, error) {
	if e.opts.SolverIterations > 0 {
		return linalg.SimplexLeastSquaresPGGram(e.gram.G, c, e.gram.Lipschitz(), e.opts.SolverIterations, 0)
	}
	return linalg.SimplexLeastSquaresGramWarm(e.gram.G, c, e.gram.AInf, bnorm, warm)
}

// batchGramPrep fills cs (row i holding c_i = Aᵀ·maxNormalise(obj_i))
// and bnorms (‖maxNormalise(obj_i)‖₂) for every valid objective,
// reusing one chunk of column buffers throughout. The context is
// checked per column chunk.
func (e *Engine) batchGramPrep(ctx context.Context, objectives [][]float64, valid []int, cs, bnorms []float64) error {
	k := len(e.refs)
	cols := make([][]float64, 0, batchChunk)
	for start := 0; start < len(valid); start += batchChunk {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := start + batchChunk
		if end > len(valid) {
			end = len(valid)
		}
		chunk := valid[start:end]
		for len(cols) < len(chunk) {
			cols = append(cols, make([]float64, e.ns))
		}
		for t, i := range chunk {
			maxNormaliseInto(cols[t], objectives[i])
			bnorms[i] = linalg.Norm2(cols[t])
		}
		prod := linalg.MulATB(e.weightMat, cols[:len(chunk)])
		for t, i := range chunk {
			for j := 0; j < k; j++ {
				cs[i*k+j] = prod.At(j, t)
			}
		}
	}
	return nil
}

// redistributeBatch runs the disaggregation and re-aggregation steps
// (Eq. 14/17) for every solved attribute of one chunk. Attributes whose
// solve failed (betas[t] == nil) are skipped. Retained crosswalks and
// fallback redistribution need the full estimated matrix per attribute,
// so those configurations take the per-attribute full-matrix path; the
// common serving configuration (no retained DM, no fallback) runs the
// fused transpose form.
func (e *Engine) redistributeBatch(objectives [][]float64, idxs []int, betas [][]float64, results []*Result, errs []error, s *engineScratch, bs *batchScratch) {
	if e.opts.KeepDM || e.opts.FallbackDM != nil {
		for t, i := range idxs {
			if betas[t] == nil {
				continue
			}
			results[i], errs[i] = e.redistribute(objectives[i], betas[t], s)
		}
		return
	}

	// Compact the chunk to the solved attributes. idxs is this chunk's
	// private sub-slice of the valid list, so the in-place filter is
	// safe under concurrent chunk workers.
	k := len(e.refs)
	live := idxs[:0:len(idxs)]
	liveBetas := betas[:0]
	for t, i := range idxs {
		if betas[t] == nil {
			continue
		}
		e.scaledWeights(bs.w[len(liveBetas)*k:(len(liveBetas)+1)*k], betas[t])
		liveBetas = append(liveBetas, betas[t])
		live = append(live, i)
	}
	B := len(live)
	if B == 0 {
		return
	}
	for t, i := range live {
		results[i] = &Result{Weights: liveBetas[t], Target: make([]float64, e.nt)}
	}

	// Per-row scales for the whole chunk, laid out at the fixed
	// redistChunk stride so the scatter below can use constant-width
	// blocks; a partial chunk zeroes the dead slots once so their
	// (never combined) accumulators stay finite. The denominator
	// combines the cached reference row sums in reference order — the
	// same sequence rowScales produces per attribute.
	if B < redistChunk {
		for i := range bs.scale {
			bs.scale[i] = 0
		}
	}
	scales := bs.scale
	for row := 0; row < e.ns; row++ {
		for t, i := range live {
			w := bs.w[t*k : (t+1)*k]
			var den float64
			for kk, wk := range w {
				if wk == 0 {
					continue
				}
				den += wk * e.rowSums[kk][row]
			}
			sc := 0.0
			if den != 0 {
				sc = objectives[i][row] / den
			}
			scales[row*redistChunk+t] = sc
		}
	}

	// Fused transpose products: one pass over each reference crosswalk
	// serves every attribute of the chunk. Entry values and column
	// indices are loaded once and applied across the chunk-wide scale
	// and accumulator blocks — fixed-size array pointers, so the inner
	// loop has constant bounds and no per-entry slice checks. Per
	// attribute this is the exact loop of redistributeTargets.
	y := bs.y
	for kk, r := range e.refs {
		used := false
		for t := 0; t < B; t++ {
			if bs.w[t*k+kk] != 0 {
				used = true
				break
			}
		}
		if !used {
			continue
		}
		for c := range y {
			y[c] = 0
		}
		for row := 0; row < e.ns; row++ {
			ss := (*[redistChunk]float64)(scales[row*redistChunk:])
			cols, vals := r.DM.Row(row)
			for tt, v := range vals {
				ys := (*[redistChunk]float64)(y[cols[tt]*redistChunk:])
				for t := 0; t < redistChunk; t++ {
					ys[t] += v * ss[t]
				}
			}
		}
		for t, i := range live {
			wk := bs.w[t*k+kk]
			if wk == 0 {
				continue
			}
			tgt := results[i].Target
			for c := range tgt {
				tgt[c] += wk * y[c*redistChunk+t]
			}
		}
	}
}
