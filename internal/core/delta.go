package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"geoalign/internal/linalg"
	"geoalign/internal/sparse"
)

// This file implements incremental engine maintenance: ApplyDelta
// derives a new Engine from a typed description of what changed —
// crosswalk rows upserted or deleted, published source aggregates
// revised — without re-running the O(ns·k²) build pipeline. The derived
// engine shares every untouched precompute array with its parent
// (copy-on-write), so a single-row delta costs a few array copies plus
// an O(k²) rank-one correction of the Gram system instead of a full
// rebuild; the serving layer publishes it as a new generation via
// Registry.SwapOwned with zero downtime.
//
// Three maintenance tiers, in increasing cost:
//
//   - value-only crosswalk patches (the row's column set is unchanged)
//     share the union pattern, slot maps and zero-row mask outright and
//     replace only the patched reference's value array;
//   - structural patches (columns added or removed, rows deleted)
//     splice the union pattern: only the affected rows re-merge, the
//     unaffected spans of the pattern and every slot map shift-copy by
//     the running offset;
//   - a revision that moves a design column's max-normaliser rescales
//     the whole column, so that column's Gram row/column is recomputed
//     by exact dot products and the Cholesky factor refactorised —
//     the row-wise rank-one path applies only while column maxes hold
//     (compared exactly: rebuild equivalence is bit-level there).

// ErrBadDelta is the sentinel wrapped by every delta validation
// failure, so callers (and the HTTP layer) can distinguish a malformed
// delta from an engine fault.
var ErrBadDelta = errors.New("core: bad delta")

// deltaRowUpdateMax bounds the number of per-row rank-one Gram updates
// one delta may perform; beyond it the changed columns are recomputed
// wholesale, which is both faster (O(ns·k) per column beats
// rows·O(k²) chains) and numerically tighter for bulk revisions.
const deltaRowUpdateMax = 256

// RowPatch upserts (or deletes) one row of one reference's crosswalk.
// Cols must be strictly increasing target-unit indices and Vals their
// non-negative entries; the pair replaces the row outright. Delete
// clears the row (Cols/Vals must be empty) — the source unit leaves
// that reference's support.
type RowPatch struct {
	Ref    int       `json:"ref"`
	Row    int       `json:"row"`
	Cols   []int     `json:"cols,omitempty"`
	Vals   []float64 `json:"vals,omitempty"`
	Delete bool      `json:"delete,omitempty"`
}

// SourcePatch revises one entry of a reference's published source
// aggregate vector (the Eq. 15 input). For references without an
// explicit Source the current effective source — the crosswalk row sums
// — is materialised first, then overridden at Row.
type SourcePatch struct {
	Ref   int     `json:"ref"`
	Row   int     `json:"row"`
	Value float64 `json:"value"`
}

// Delta is one atomic batch of reference revisions. Applying it yields
// a new engine generation; the receiver is never modified.
type Delta struct {
	RowPatches    []RowPatch    `json:"row_patches,omitempty"`
	SourcePatches []SourcePatch `json:"source_patches,omitempty"`
}

// Empty reports whether the delta carries no patches.
func (d *Delta) Empty() bool {
	return len(d.RowPatches) == 0 && len(d.SourcePatches) == 0
}

// Validate checks the delta against an engine shape: ns source units,
// nt target units, k references. Every failure wraps ErrBadDelta.
func (d *Delta) Validate(ns, nt, k int) error {
	if d.Empty() {
		return fmt.Errorf("%w: empty delta", ErrBadDelta)
	}
	seenRow := make(map[[2]int]bool, len(d.RowPatches))
	for i, p := range d.RowPatches {
		if p.Ref < 0 || p.Ref >= k {
			return fmt.Errorf("%w: row patch %d: reference %d out of range [0,%d)", ErrBadDelta, i, p.Ref, k)
		}
		if p.Row < 0 || p.Row >= ns {
			return fmt.Errorf("%w: row patch %d: row %d out of range [0,%d)", ErrBadDelta, i, p.Row, ns)
		}
		key := [2]int{p.Ref, p.Row}
		if seenRow[key] {
			return fmt.Errorf("%w: row patch %d: duplicate patch for reference %d row %d", ErrBadDelta, i, p.Ref, p.Row)
		}
		seenRow[key] = true
		if p.Delete {
			if len(p.Cols) != 0 || len(p.Vals) != 0 {
				return fmt.Errorf("%w: row patch %d: delete carries %d cols and %d vals", ErrBadDelta, i, len(p.Cols), len(p.Vals))
			}
			continue
		}
		if len(p.Cols) != len(p.Vals) {
			return fmt.Errorf("%w: row patch %d: %d cols for %d vals", ErrBadDelta, i, len(p.Cols), len(p.Vals))
		}
		prev := -1
		for t, c := range p.Cols {
			if c <= prev || c >= nt {
				return fmt.Errorf("%w: row patch %d: columns not strictly increasing in [0,%d)", ErrBadDelta, i, nt)
			}
			prev = c
			v := p.Vals[t]
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("%w: row patch %d: value %g is not finite and non-negative", ErrBadDelta, i, v)
			}
		}
	}
	seenSrc := make(map[[2]int]bool, len(d.SourcePatches))
	for i, p := range d.SourcePatches {
		if p.Ref < 0 || p.Ref >= k {
			return fmt.Errorf("%w: source patch %d: reference %d out of range [0,%d)", ErrBadDelta, i, p.Ref, k)
		}
		if p.Row < 0 || p.Row >= ns {
			return fmt.Errorf("%w: source patch %d: row %d out of range [0,%d)", ErrBadDelta, i, p.Row, ns)
		}
		key := [2]int{p.Ref, p.Row}
		if seenSrc[key] {
			return fmt.Errorf("%w: source patch %d: duplicate patch for reference %d row %d", ErrBadDelta, i, p.Ref, p.Row)
		}
		seenSrc[key] = true
		if math.IsNaN(p.Value) || math.IsInf(p.Value, 0) || p.Value < 0 {
			return fmt.Errorf("%w: source patch %d: value %g is not finite and non-negative", ErrBadDelta, i, p.Value)
		}
	}
	return nil
}

// colPlan describes one design-matrix column whose raw source changed.
type colPlan struct {
	ref            int
	raw            []float64 // the column's new raw source vector
	rows           []int     // rows whose raw entry changed (row path only)
	oldMax, newMax float64
}

// ApplyDelta derives a new engine with the delta applied. The receiver
// is not modified and stays fully usable — in-flight Aligns continue on
// it — so a serving layer can hot-swap generations with zero downtime.
// Untouched precompute arrays are shared between parent and child,
// except when the parent is snapshot-backed: its arrays alias a mapping
// that unmapping (Close) would tear out from under the child, so a
// snapshot-backed parent deep-copies everything and the child owns its
// memory outright (the child is never snapshot-backed).
//
// The derived engine's weights and estimates match an engine rebuilt
// from the patched references to ~1e-9 (bit-identical when no design
// column's max-normaliser moved); the rebuild-equivalence harness in
// delta_test.go pins that.
func (e *Engine) ApplyDelta(d Delta) (*Engine, error) {
	if err := d.Validate(e.ns, e.nt, len(e.refs)); err != nil {
		return nil, err
	}
	deep := e.snap != nil
	k := len(e.refs)

	ne := &Engine{
		ns:   e.ns,
		nt:   e.nt,
		refs: append([]Reference(nil), e.refs...),
		opts: e.opts,
	}

	rowsByRef := make(map[int][]RowPatch)
	for _, p := range d.RowPatches {
		rowsByRef[p.Ref] = append(rowsByRef[p.Ref], p)
	}
	srcByRef := make(map[int][]SourcePatch)
	for _, p := range d.SourcePatches {
		srcByRef[p.Ref] = append(srcByRef[p.Ref], p)
	}

	// 1. Patch reference crosswalks and the Eq. 14 row-sum normalisers.
	structRows := make(map[int]bool)
	ne.rowSums = make([][]float64, k)
	ne.maxRow = append([]float64(nil), e.maxRow...)
	for r := 0; r < k; r++ {
		patches := rowsByRef[r]
		if len(patches) == 0 {
			ne.rowSums[r] = e.rowSums[r]
			if deep {
				ne.refs[r].DM = e.refs[r].DM.Clone()
				if e.refs[r].Source != nil {
					ne.refs[r].Source = append([]float64(nil), e.refs[r].Source...)
				}
				ne.rowSums[r] = append([]float64(nil), e.rowSums[r]...)
			}
			continue
		}
		dm, structural := spliceCSR(e.refs[r].DM, patches, deep)
		ne.refs[r].DM = dm
		if structural {
			for _, p := range patches {
				structRows[p.Row] = true
			}
		}
		if deep && e.refs[r].Source != nil {
			ne.refs[r].Source = append([]float64(nil), e.refs[r].Source...)
		}
		sums := append([]float64(nil), e.rowSums[r]...)
		for _, p := range patches {
			sums[p.Row] = linalg.Sum(p.Vals)
		}
		ne.rowSums[r] = sums
		ne.maxRow[r] = linalg.MaxAbs(sums)
	}

	// 2. Materialise revised source vectors and plan the design-matrix
	// column maintenance. A reference's design column derives from its
	// published Source when present, else from its crosswalk row sums.
	var plans []colPlan
	for r := 0; r < k; r++ {
		src := srcByRef[r]
		rowPatched := len(rowsByRef[r]) > 0
		hadSource := e.refs[r].Source != nil
		if len(src) == 0 && (!rowPatched || hadSource) {
			continue // design column unchanged
		}
		oldRaw := e.rowSums[r]
		if hadSource {
			oldRaw = e.refs[r].Source
		}
		var newRaw []float64
		changed := make(map[int]bool)
		if len(src) > 0 {
			if hadSource {
				newRaw = append([]float64(nil), e.refs[r].Source...)
			} else {
				// Materialise the effective source (the patched row sums)
				// as an explicit vector before overriding entries.
				newRaw = append([]float64(nil), ne.rowSums[r]...)
				if rowPatched {
					for _, p := range rowsByRef[r] {
						changed[p.Row] = true
					}
				}
			}
			for _, p := range src {
				newRaw[p.Row] = p.Value
				changed[p.Row] = true
			}
			ne.refs[r].Source = newRaw
		} else {
			// nil-Source reference with crosswalk patches: the design
			// column follows the patched row sums.
			newRaw = ne.rowSums[r]
			for _, p := range rowsByRef[r] {
				changed[p.Row] = true
			}
		}
		rows := make([]int, 0, len(changed))
		for i := range changed {
			rows = append(rows, i)
		}
		sort.Ints(rows)
		plans = append(plans, colPlan{
			ref:    r,
			raw:    newRaw,
			rows:   rows,
			oldMax: maxOf(oldRaw),
			newMax: maxOf(newRaw),
		})
	}

	// 3. Maintain the design matrix and Gram system.
	e.applyColumnPlans(ne, plans, deep)

	// 4. Maintain the union pattern.
	if len(structRows) == 0 {
		if deep {
			ne.pat = &sparse.CSR{
				Rows: e.ns, Cols: e.nt,
				IndPtr: append([]int(nil), e.pat.IndPtr...),
				ColIdx: append([]int(nil), e.pat.ColIdx...),
			}
			ne.slots = make([][]int, k)
			for i := range e.slots {
				ne.slots[i] = append([]int(nil), e.slots[i]...)
			}
		} else {
			ne.pat = e.pat
			ne.slots = e.slots
		}
		ne.zeroRow = e.zeroRow
	} else {
		affected := make([]int, 0, len(structRows))
		for i := range structRows {
			affected = append(affected, i)
		}
		sort.Ints(affected)
		e.splicePattern(ne, affected)
	}

	ne.initPools()
	return ne, nil
}

// applyColumnPlans executes the design-matrix maintenance plans against
// a mutable clone of the Gram system (or shares the parent's when no
// column changed). Plans whose column max held use per-row rank-one
// updates; plans whose max moved — or an oversized row batch — rewrite
// the whole column and recompute its Gram row/column exactly.
func (e *Engine) applyColumnPlans(ne *Engine, plans []colPlan, deep bool) {
	if len(plans) == 0 {
		if !deep {
			ne.weightMat = e.weightMat
			ne.gram = e.gram
			return
		}
		wm := e.weightMat.Clone()
		gs := e.gram.MutableClone(wm)
		// G is unchanged, so the parent's Lipschitz constant still holds.
		if lip, ok := e.gram.CachedLipschitz(); ok {
			gs.PrimeLipschitz(lip)
		}
		ne.weightMat, ne.gram = wm, gs
		return
	}

	var rowPlans, bulkPlans []colPlan
	totalRows := 0
	for _, pl := range plans {
		switch {
		case pl.newMax != pl.oldMax:
			bulkPlans = append(bulkPlans, pl)
		case pl.newMax == 0:
			// All-zero column before and after: the normalised column is
			// zeros either way, nothing to maintain.
		default:
			rowPlans = append(rowPlans, pl)
			totalRows += len(pl.rows)
		}
	}
	if totalRows > deltaRowUpdateMax {
		bulkPlans = append(bulkPlans, rowPlans...)
		rowPlans = nil
	}
	if len(rowPlans) == 0 && len(bulkPlans) == 0 {
		// Only max-zero no-op plans: design matrix is element-wise
		// unchanged; share (or clone, when deep) like the no-plan case.
		e.applyColumnPlans(ne, nil, deep)
		return
	}

	wm := e.weightMat.Clone()
	gs := e.gram.MutableClone(wm)

	// Row path first: the rank-one updates write whole design rows, and
	// any stale entries they carry in bulk columns are overwritten (and
	// their Gram contributions recomputed) by the column path below.
	if len(rowPlans) > 0 {
		edits := make(map[int][]colPlan) // row -> plans touching it
		for _, pl := range rowPlans {
			for _, i := range pl.rows {
				edits[i] = append(edits[i], pl)
			}
		}
		rows := make([]int, 0, len(edits))
		for i := range edits {
			rows = append(rows, i)
		}
		sort.Ints(rows)
		newRow := make([]float64, wm.Cols)
		for _, i := range rows {
			copy(newRow, wm.Row(i))
			for _, pl := range edits[i] {
				newRow[pl.ref] = pl.raw[i] / pl.newMax
			}
			gs.UpdateRow(i, newRow)
		}
	}
	if len(bulkPlans) > 0 {
		cols := make([]int, 0, len(bulkPlans))
		for _, pl := range bulkPlans {
			for i := 0; i < e.ns; i++ {
				v := 0.0
				if pl.newMax > 0 {
					v = pl.raw[i] / pl.newMax
				}
				wm.Data[i*wm.Cols+pl.ref] = v
			}
			cols = append(cols, pl.ref)
		}
		gs.RecomputeColumns(cols)
	}
	gs.RefreshInfNorm()
	ne.weightMat, ne.gram = wm, gs
}

// spliceCSR applies one reference's row patches, returning the patched
// crosswalk and whether any patch was structural (changed a row's
// column set). Value-only patch sets share IndPtr/ColIdx with the old
// matrix (copied when deep) and replace only the value array;
// structural sets rebuild all three arrays with unaffected row spans
// block-copied.
func spliceCSR(old *sparse.CSR, patches []RowPatch, deep bool) (*sparse.CSR, bool) {
	structural := false
	for _, p := range patches {
		cols, _ := old.Row(p.Row)
		if !intsEqual(cols, p.Cols) {
			structural = true
			break
		}
	}
	if !structural {
		val := append([]float64(nil), old.Val...)
		for _, p := range patches {
			copy(val[old.IndPtr[p.Row]:], p.Vals)
		}
		indptr, colIdx := old.IndPtr, old.ColIdx
		if deep {
			indptr = append([]int(nil), indptr...)
			colIdx = append([]int(nil), colIdx...)
		}
		return &sparse.CSR{Rows: old.Rows, Cols: old.Cols, IndPtr: indptr, ColIdx: colIdx, Val: val}, false
	}

	sorted := append([]RowPatch(nil), patches...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Row < sorted[j].Row })
	nnz := old.NNZ()
	for _, p := range sorted {
		nnz += len(p.Cols) - (old.IndPtr[p.Row+1] - old.IndPtr[p.Row])
	}
	indptr := make([]int, old.Rows+1)
	colIdx := make([]int, nnz)
	val := make([]float64, nnz)
	pos, pi := 0, 0
	for i := 0; i < old.Rows; i++ {
		indptr[i] = pos
		if pi < len(sorted) && sorted[pi].Row == i {
			p := sorted[pi]
			pi++
			copy(colIdx[pos:], p.Cols)
			copy(val[pos:], p.Vals)
			pos += len(p.Cols)
			continue
		}
		lo, hi := old.IndPtr[i], old.IndPtr[i+1]
		copy(colIdx[pos:], old.ColIdx[lo:hi])
		copy(val[pos:], old.Val[lo:hi])
		pos += hi - lo
	}
	indptr[old.Rows] = pos
	return &sparse.CSR{Rows: old.Rows, Cols: old.Cols, IndPtr: indptr, ColIdx: colIdx, Val: val}, true
}

// splicePattern rebuilds the union sparsity pattern incrementally: only
// the affected rows (sorted, deduplicated) re-merge their references'
// column sets; every other row's pattern span and slot entries
// shift-copy by the running offset. ne must already carry the patched
// references; e supplies the old pattern and slots.
func (e *Engine) splicePattern(ne *Engine, affected []int) {
	seen := make([]bool, e.nt)
	merged := make(map[int][]int, len(affected))
	sizeDelta := 0
	for _, i := range affected {
		var cols []int
		for _, r := range ne.refs {
			rcols, _ := r.DM.Row(i)
			for _, c := range rcols {
				if !seen[c] {
					seen[c] = true
					cols = append(cols, c)
				}
			}
		}
		insertionSortInts(cols)
		for _, c := range cols {
			seen[c] = false
		}
		merged[i] = cols
		sizeDelta += len(cols) - (e.pat.IndPtr[i+1] - e.pat.IndPtr[i])
	}

	isAff := make([]bool, e.ns)
	for _, i := range affected {
		isAff[i] = true
	}
	newIndPtr := make([]int, e.ns+1)
	newColIdx := make([]int, len(e.pat.ColIdx)+sizeDelta)
	pos := 0
	for i := 0; i < e.ns; i++ {
		newIndPtr[i] = pos
		if isAff[i] {
			pos += copy(newColIdx[pos:], merged[i])
			continue
		}
		lo, hi := e.pat.IndPtr[i], e.pat.IndPtr[i+1]
		pos += copy(newColIdx[pos:], e.pat.ColIdx[lo:hi])
	}
	newIndPtr[e.ns] = pos
	ne.pat = &sparse.CSR{Rows: e.ns, Cols: e.nt, IndPtr: newIndPtr, ColIdx: newColIdx}

	zr := append([]bool(nil), e.zeroRow...)
	for _, i := range affected {
		zr[i] = len(merged[i]) == 0
	}
	ne.zeroRow = zr

	// Slot maps: unaffected rows shift by the pattern offset; affected
	// rows rebind through the re-merged union row.
	ne.slots = make([][]int, len(ne.refs))
	for kk := range ne.refs {
		oldDM, newDM := e.refs[kk].DM, ne.refs[kk].DM
		oldSlots := e.slots[kk]
		out := make([]int, newDM.NNZ())
		for i := 0; i < e.ns; i++ {
			if isAff[i] {
				continue
			}
			shift := newIndPtr[i] - e.pat.IndPtr[i]
			lo, hi := oldDM.IndPtr[i], oldDM.IndPtr[i+1]
			nlo := newDM.IndPtr[i]
			for t := lo; t < hi; t++ {
				out[nlo+(t-lo)] = oldSlots[t] + shift
			}
		}
		ne.slots[kk] = out
	}
	posOf := make([]int, e.nt)
	for _, i := range affected {
		base := newIndPtr[i]
		for idx, c := range merged[i] {
			posOf[c] = base + idx
		}
		for kk, r := range ne.refs {
			cols, _ := r.DM.Row(i)
			start := r.DM.IndPtr[i]
			for t, c := range cols {
				ne.slots[kk][start+t] = posOf[c]
			}
		}
	}
}

// maxOf mirrors maxNormalise's normaliser: the maximum entry (the
// vectors are validated non-negative, so no abs is taken).
func maxOf(v []float64) float64 {
	var mx float64
	for _, x := range v {
		if x > mx {
			mx = x
		}
	}
	return mx
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
