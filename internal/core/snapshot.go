package core

import (
	"fmt"
	"io"

	"geoalign/internal/linalg"
	"geoalign/internal/snapshot"
	"geoalign/internal/sparse"
)

// This file maps an Engine onto the internal/snapshot container. The
// container knows only typed sections; the engine schema lives here.
//
// A snapshot stores every attribute-independent precompute NewEngine
// derives from raw crosswalks — the reference CSRs, the Eq. 15 design
// matrix, its Gram system (with the Lipschitz constant and Cholesky
// factor when they have been computed), the union sparsity pattern with
// per-reference slot maps, the Eq. 14 row-sum normalisers and the
// zero-support mask — so loading rebuilds the Engine by wiring views
// over the mapped file instead of re-running the build pipeline.
// Options are deliberately NOT stored: they are caller policy, supplied
// again at load time.

// Fixed section ids. Per-reference sections live at
// refSectionBase + ref*refSectionStride + field.
const (
	secMeta       = 1  // ints: ns, nt, k, flags
	secScalars    = 2  // f64: ‖A‖∞, Lipschitz constant (valid iff flagLipschitz)
	secPatIndPtr  = 3  // ints, ns+1: union pattern row pointers
	secPatColIdx  = 4  // ints: union pattern column indices
	secWeightMat  = 5  // f64, ns×k row-major: Eq. 15 design matrix
	secGram       = 6  // f64, k×k row-major: AᵀA
	secCholesky   = 7  // f64, k×k row-major; present iff flagCholeskyPD
	secZeroRow    = 8  // bytes, ns: Eq. 14 zero-support mask (0/1)
	secRefNames   = 9  // strings, k
	secSourceKeys = 10 // strings, optional: source unit keys
	secTargetKeys = 11 // strings, optional: target unit keys

	refSectionBase   = 1000
	refSectionStride = 8
	refDMIndPtr      = 0 // ints, ns+1
	refDMColIdx      = 1 // ints, nnz
	refDMVal         = 2 // f64, nnz
	refSource        = 3 // f64, ns; present only when the reference had one
	refRowSums       = 4 // f64, ns: DM row sums (Eq. 14 denominator basis)
	refSlots         = 5 // ints, nnz: entry positions in the union pattern
)

// Meta flags.
const (
	flagLipschitz    = 1 << 0 // the scalars section carries a Lipschitz constant
	flagCholeskyPD   = 1 << 1 // Cholesky computed, factor stored in secCholesky
	flagCholeskyFail = 1 << 2 // Cholesky attempted, G not positive definite
)

// Plausibility bounds on the meta dimensions, checked before any
// arithmetic on them so corrupt counts cannot overflow size products.
const (
	maxSnapshotUnits = 1 << 40
	maxSnapshotRefs  = 1 << 20
)

// SnapshotMeta carries the unit keys alongside an engine snapshot.
// Engines address units by index; the keys restore the mapping to
// external identifiers (FIPS codes, tract GEOIDs). Either slice may be
// empty.
type SnapshotMeta struct {
	SourceKeys []string
	TargetKeys []string
}

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", snapshot.ErrCorrupt, fmt.Sprintf(format, args...))
}

// WriteSnapshot serialises the engine's full precompute to w. meta may
// be nil when unit keys are not tracked. Lazy state (Lipschitz
// constant, Cholesky factor) is written only if already computed — call
// PrecomputeSolverCaches first to force it in, as `geoalign snapshot
// build` does.
func (e *Engine) WriteSnapshot(w io.Writer, meta *SnapshotMeta) (int64, error) {
	return e.snapshotWriter(meta).WriteTo(w)
}

// WriteSnapshotFile writes the snapshot atomically to path
// (temp file + rename, fsynced).
func (e *Engine) WriteSnapshotFile(path string, meta *SnapshotMeta) error {
	return snapshot.WriteFile(path, e.snapshotWriter(meta))
}

// SnapshotSize returns the exact byte size WriteSnapshot would produce.
func (e *Engine) SnapshotSize(meta *SnapshotMeta) int64 {
	return e.snapshotWriter(meta).Layout()
}

// PrecomputeSolverCaches forces the lazily computed solver state — the
// projected-gradient Lipschitz constant and the Gram Cholesky factor —
// so a subsequent WriteSnapshot persists them and loaded engines never
// pay for either.
func (e *Engine) PrecomputeSolverCaches() {
	e.gram.Lipschitz()
	e.gram.CholeskyFactor()
}

func (e *Engine) snapshotWriter(meta *SnapshotMeta) *snapshot.Writer {
	k := len(e.refs)
	flags := 0
	scalars := []float64{e.gram.AInf, 0}
	if lip, ok := e.gram.CachedLipschitz(); ok {
		flags |= flagLipschitz
		scalars[1] = lip
	}
	chol, cholDone := e.gram.CachedCholesky()
	if cholDone {
		if chol != nil {
			flags |= flagCholeskyPD
		} else {
			flags |= flagCholeskyFail
		}
	}

	w := snapshot.NewWriter()
	w.Ints(secMeta, []int{e.ns, e.nt, k, flags})
	w.F64(secScalars, scalars)
	w.Ints(secPatIndPtr, e.pat.IndPtr)
	w.Ints(secPatColIdx, e.pat.ColIdx)
	w.F64(secWeightMat, e.weightMat.Data)
	w.F64(secGram, e.gram.Gram().Data)
	if chol != nil {
		w.F64(secCholesky, chol.Data)
	}
	zero := make([]byte, e.ns)
	for i, z := range e.zeroRow {
		if z {
			zero[i] = 1
		}
	}
	w.Bytes(secZeroRow, zero)
	names := make([]string, k)
	for i, r := range e.refs {
		names[i] = r.Name
	}
	w.Strings(secRefNames, names)
	if meta != nil && len(meta.SourceKeys) > 0 {
		w.Strings(secSourceKeys, meta.SourceKeys)
	}
	if meta != nil && len(meta.TargetKeys) > 0 {
		w.Strings(secTargetKeys, meta.TargetKeys)
	}
	for i, r := range e.refs {
		base := uint32(refSectionBase + i*refSectionStride)
		w.Ints(base+refDMIndPtr, r.DM.IndPtr)
		w.Ints(base+refDMColIdx, r.DM.ColIdx)
		w.F64(base+refDMVal, r.DM.Val)
		if r.Source != nil {
			w.F64(base+refSource, r.Source)
		}
		w.F64(base+refRowSums, e.rowSums[i])
		w.Ints(base+refSlots, e.slots[i])
	}
	return w
}

// LoadSnapshot maps the snapshot at path and rebuilds the engine
// around it. opts plays the same role as in NewEngine (and, like
// there, SolverIterations > 0 forces the Lipschitz constant, reusing
// the persisted one when present). The returned engine owns the
// mapping: its hot arrays alias the file, so Close must not be called
// before the last Align completes. Results are bit-identical to the
// engine the snapshot was written from.
func LoadSnapshot(path string, opts Options) (*Engine, *SnapshotMeta, error) {
	f, err := snapshot.Open(path)
	if err != nil {
		return nil, nil, err
	}
	e, meta, err := engineFromSnapshot(f, opts)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return e, meta, nil
}

// LoadSnapshotBytes rebuilds an engine from an in-memory snapshot.
func LoadSnapshotBytes(data []byte, opts Options) (*Engine, *SnapshotMeta, error) {
	f, err := snapshot.OpenBytes(data)
	if err != nil {
		return nil, nil, err
	}
	e, meta, err := engineFromSnapshot(f, opts)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return e, meta, nil
}

func engineFromSnapshot(f *snapshot.File, opts Options) (*Engine, *SnapshotMeta, error) {
	m, err := f.Ints(secMeta)
	if err != nil {
		return nil, nil, err
	}
	if len(m) < 4 {
		return nil, nil, corruptf("meta section has %d fields, want 4", len(m))
	}
	ns, nt, k, flags := m[0], m[1], m[2], m[3]
	if ns < 0 || nt < 0 || ns > maxSnapshotUnits || nt > maxSnapshotUnits {
		return nil, nil, corruptf("implausible unit counts %d x %d", ns, nt)
	}
	if k < 1 || k > maxSnapshotRefs {
		return nil, nil, corruptf("implausible reference count %d", k)
	}

	scalars, err := f.F64(secScalars)
	if err != nil {
		return nil, nil, err
	}
	if len(scalars) < 2 {
		return nil, nil, corruptf("scalar section has %d values, want 2", len(scalars))
	}

	patIndPtr, err := f.Ints(secPatIndPtr)
	if err != nil {
		return nil, nil, err
	}
	patColIdx, err := f.Ints(secPatColIdx)
	if err != nil {
		return nil, nil, err
	}
	if err := checkCSRShape("union pattern", patIndPtr, patColIdx, nil, ns, nt); err != nil {
		return nil, nil, err
	}
	pat := &sparse.CSR{Rows: ns, Cols: nt, IndPtr: patIndPtr, ColIdx: patColIdx}

	wmData, err := f.F64(secWeightMat)
	if err != nil {
		return nil, nil, err
	}
	if int64(len(wmData)) != int64(ns)*int64(k) {
		return nil, nil, corruptf("design matrix has %d values, want %d x %d", len(wmData), ns, k)
	}
	weightMat := &linalg.Matrix{Rows: ns, Cols: k, Data: wmData}

	gData, err := f.F64(secGram)
	if err != nil {
		return nil, nil, err
	}
	if int64(len(gData)) != int64(k)*int64(k) {
		return nil, nil, corruptf("Gram matrix has %d values, want %d x %d", len(gData), k, k)
	}
	gram := linalg.RestoreGramSystem(weightMat, &linalg.Matrix{Rows: k, Cols: k, Data: gData}, scalars[0])
	if flags&flagLipschitz != 0 {
		gram.PrimeLipschitz(scalars[1])
	}
	switch {
	case flags&flagCholeskyPD != 0:
		cData, err := f.F64(secCholesky)
		if err != nil {
			return nil, nil, err
		}
		if int64(len(cData)) != int64(k)*int64(k) {
			return nil, nil, corruptf("Cholesky factor has %d values, want %d x %d", len(cData), k, k)
		}
		gram.PrimeCholesky(&linalg.Matrix{Rows: k, Cols: k, Data: cData})
	case flags&flagCholeskyFail != 0:
		gram.PrimeCholesky(nil)
	}

	zeroBytes, err := f.Bytes(secZeroRow)
	if err != nil {
		return nil, nil, err
	}
	if len(zeroBytes) != ns {
		return nil, nil, corruptf("zero-row mask has %d entries, want %d", len(zeroBytes), ns)
	}
	zeroRow := make([]bool, ns)
	for i, b := range zeroBytes {
		// The mask is derivable from the pattern; a disagreement means
		// the sections do not belong to the same engine.
		derived := patIndPtr[i] == patIndPtr[i+1]
		if (b != 0) != derived {
			return nil, nil, corruptf("zero-row mask disagrees with the union pattern at row %d", i)
		}
		zeroRow[i] = b != 0
	}

	names, err := f.Strings(secRefNames)
	if err != nil {
		return nil, nil, err
	}
	if len(names) != k {
		return nil, nil, corruptf("%d reference names for %d references", len(names), k)
	}

	e := &Engine{
		ns:   ns,
		nt:   nt,
		refs: make([]Reference, k),
		opts: opts,
		// normSrc stays nil: the design matrix columns hold the same
		// bits, and only the source-override path reads it (extracted
		// lazily by normSrcCols).
		weightMat: weightMat,
		gram:      gram,
		rowSums:   make([][]float64, k),
		maxRow:    make([]float64, k),
		pat:       pat,
		slots:     make([][]int, k),
		zeroRow:   zeroRow,
		snap:      f,
	}
	for i := 0; i < k; i++ {
		base := uint32(refSectionBase + i*refSectionStride)
		indptr, err := f.Ints(base + refDMIndPtr)
		if err != nil {
			return nil, nil, err
		}
		colIdx, err := f.Ints(base + refDMColIdx)
		if err != nil {
			return nil, nil, err
		}
		val, err := f.F64(base + refDMVal)
		if err != nil {
			return nil, nil, err
		}
		what := fmt.Sprintf("reference %d (%s)", i, names[i])
		r := Reference{Name: names[i], DM: &sparse.CSR{Rows: ns, Cols: nt, IndPtr: indptr, ColIdx: colIdx, Val: val}}
		if f.Has(base + refSource) {
			src, err := f.F64(base + refSource)
			if err != nil {
				return nil, nil, err
			}
			if len(src) != ns {
				return nil, nil, corruptf("%s source vector has %d entries, want %d", what, len(src), ns)
			}
			r.Source = src
		}
		e.refs[i] = r

		sums, err := f.F64(base + refRowSums)
		if err != nil {
			return nil, nil, err
		}
		if len(sums) != ns {
			return nil, nil, corruptf("%s row sums have %d entries, want %d", what, len(sums), ns)
		}
		e.rowSums[i] = sums
		e.maxRow[i] = linalg.MaxAbs(sums)

		slots, err := f.Ints(base + refSlots)
		if err != nil {
			return nil, nil, err
		}
		if err := checkSlots(what, slots, r.DM, pat); err != nil {
			return nil, nil, err
		}
		e.slots[i] = slots
	}

	if opts.SolverIterations > 0 {
		// Same eager policy as NewEngine; a no-op when the constant was
		// persisted.
		e.gram.Lipschitz()
	}
	e.initPools()

	var meta SnapshotMeta
	if f.Has(secSourceKeys) {
		if meta.SourceKeys, err = f.Strings(secSourceKeys); err != nil {
			return nil, nil, err
		}
	}
	if f.Has(secTargetKeys) {
		if meta.TargetKeys, err = f.Strings(secTargetKeys); err != nil {
			return nil, nil, err
		}
	}
	return e, &meta, nil
}

// checkCSRShape validates the structural invariants every loaded CSR
// must satisfy before the engine's unchecked hot loops may index into
// it: correct pointer array length, monotone row pointers covering
// exactly the stored entries, and strictly increasing in-range column
// indices per row (the documented CSR invariant).
func checkCSRShape(what string, indptr, colIdx []int, val []float64, rows, cols int) error {
	if len(indptr) != rows+1 {
		return corruptf("%s has %d row pointers, want %d", what, len(indptr), rows+1)
	}
	if indptr[0] != 0 {
		return corruptf("%s row pointers start at %d, want 0", what, indptr[0])
	}
	if indptr[rows] != len(colIdx) {
		return corruptf("%s row pointers end at %d, but %d entries are stored", what, indptr[rows], len(colIdx))
	}
	if val != nil && len(val) != len(colIdx) {
		return corruptf("%s has %d values for %d column indices", what, len(val), len(colIdx))
	}
	n := len(colIdx)
	for i := 0; i < rows; i++ {
		lo, hi := indptr[i], indptr[i+1]
		// hi > n guards against an interior overshoot compensated by a
		// later decrease: the total matching len(colIdx) does not make
		// every prefix in range, and the entry loop must never index
		// past the section.
		if lo > hi || hi > n {
			return corruptf("%s row %d pointers decrease or overshoot (%d, %d of %d)", what, i, lo, hi, n)
		}
		prev := -1
		for p := lo; p < hi; p++ {
			c := colIdx[p]
			if c <= prev || c >= cols {
				return corruptf("%s row %d column indices are not strictly increasing in [0,%d)", what, i, cols)
			}
			prev = c
		}
	}
	return nil
}

// checkSlots validates a reference's crosswalk and slot map in a
// single pass: the CSR invariants of checkCSRShape, plus every stored
// entry's slot landing on the matching union-pattern column of its own
// row. The combined guarantee is what makes the engine's unchecked
// hot-loop indexing (the redistributeDM scatter) safe on loaded data;
// one fused pass over the entries keeps the mmap cold-start cheap.
func checkSlots(what string, slots []int, dm, pat *sparse.CSR) error {
	indptr, colIdx := dm.IndPtr, dm.ColIdx
	rows, cols := dm.Rows, dm.Cols
	if len(indptr) != rows+1 {
		return corruptf("%s has %d row pointers, want %d", what, len(indptr), rows+1)
	}
	if indptr[0] != 0 {
		return corruptf("%s row pointers start at %d, want 0", what, indptr[0])
	}
	if indptr[rows] != len(colIdx) {
		return corruptf("%s row pointers end at %d, but %d entries are stored", what, indptr[rows], len(colIdx))
	}
	if dm.Val != nil && len(dm.Val) != len(colIdx) {
		return corruptf("%s has %d values for %d column indices", what, len(dm.Val), len(colIdx))
	}
	if len(slots) != len(colIdx) {
		return corruptf("%s has %d slots for %d entries", what, len(slots), len(colIdx))
	}
	patCol := pat.ColIdx
	n := len(colIdx)
	slots = slots[:n]
	for i := 0; i < rows; i++ {
		lo, hi := indptr[i], indptr[i+1]
		// hi > n guards against an interior overshoot compensated by a
		// later decrease (see checkCSRShape); it also lets the compiler
		// drop the bounds checks in the entry loop.
		if lo > hi || hi > n {
			return corruptf("%s row %d pointers decrease or overshoot (%d, %d of %d)", what, i, lo, hi, n)
		}
		plo, phi := pat.IndPtr[i], pat.IndPtr[i+1]
		if plo < 0 || plo > phi || phi > len(patCol) {
			return corruptf("%s union pattern row %d is malformed", what, i)
		}
		prev := -1
		for p := lo; p < hi; p++ {
			c := colIdx[p]
			if c <= prev || c >= cols {
				return corruptf("%s row %d column indices are not strictly increasing in [0,%d)", what, i, cols)
			}
			prev = c
			s := slots[p]
			if s < plo || s >= phi || patCol[s] != c {
				return corruptf("%s slot map entry %d does not land on its pattern column", what, p)
			}
		}
	}
	return nil
}
