package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"geoalign/internal/linalg"
	"geoalign/internal/sparse"
)

// Engine is a reusable GeoAlign aligner for crosswalking many
// attributes over one fixed set of references — the §4.3 / Figure 8
// workload. Construction precomputes everything that does not depend
// on the objective attribute:
//
//   - validated shapes (every reference |U^s|×|U^t|),
//   - the Eq. 15 design matrix of max-normalised reference source
//     aggregates, together with its normal-equations form (the k×k
//     Gram matrix AᵀA, ‖A‖∞ and — lazily — the projected-gradient
//     Lipschitz constant), so each per-attribute solve only computes
//     c = Aᵀb in O(ns·k) and then works in k-dimensional space,
//   - each reference crosswalk's row sums and their maximum (the
//     per-reference normaliser of the Eq. 14 numerator),
//   - the union sparsity pattern of the reference crosswalks plus a
//     per-reference map from stored entries into that pattern, so the
//     β-weighted combination fills a flat value buffer with no
//     allocation, sorting or merging per call,
//   - the zero-row mask of source units with no stored entry in any
//     reference (the Eq. 14 degenerate case for every objective).
//
// After construction an Engine is immutable and safe for concurrent
// use: Align may be called from many goroutines, and AlignAll fans a
// batch of objectives across a worker pool. Per-call state lives in
// pooled scratch buffers; no two concurrent calls share mutable data.
type Engine struct {
	ns, nt int
	refs   []Reference
	opts   Options

	weightMat *linalg.Matrix     // Eq. 15 design matrix (ns × k)
	gram      *linalg.GramSystem // its cached normal equations
	normSrc   [][]float64        // its columns: maxNormalise(source_k)
	maxRow    []float64      // max |row sum| per reference crosswalk
	pat       *sparse.CSR    // union sparsity pattern (Val is nil)
	slots     [][]int        // slots[k][t]: union position of ref k's t-th entry
	zeroRow   []bool         // no reference has support in this source unit

	scratch sync.Pool
}

// engineScratch is the per-call mutable state of one Align solve.
type engineScratch struct {
	val   []float64 // union-pattern value buffer (the Eq. 14 numerator)
	den   []float64 // its row sums
	scale []float64 // per-row disaggregation factor
	w     []float64 // β scaled by the per-reference normaliser
	b     []float64 // max-normalised objective
}

// NewEngine validates the references and precomputes the shared
// crosswalk structure. The references' matrices are captured by
// reference and must not be mutated while the engine is in use.
func NewEngine(refs []Reference, opts Options) (*Engine, error) {
	if len(refs) == 0 {
		return nil, ErrNoReferences
	}
	for k, r := range refs {
		if r.DM == nil {
			return nil, fmt.Errorf("core: reference %d (%s) has no disaggregation matrix", k, r.Name)
		}
	}
	ns, nt := refs[0].DM.Rows, refs[0].DM.Cols
	for k, r := range refs {
		if r.DM.Rows != ns || r.DM.Cols != nt {
			return nil, fmt.Errorf("core: reference %d (%s) DM is %dx%d, reference 0 is %dx%d",
				k, r.Name, r.DM.Rows, r.DM.Cols, ns, nt)
		}
		if r.Source != nil && len(r.Source) != ns {
			return nil, fmt.Errorf("core: reference %d (%s) source vector length %d, want %d",
				k, r.Name, len(r.Source), ns)
		}
	}
	e := &Engine{
		ns:   ns,
		nt:   nt,
		refs: append([]Reference(nil), refs...),
		opts: opts,
	}

	// Eq. 15 design matrix and Eq. 14 normalisers.
	k := len(refs)
	e.normSrc = make([][]float64, k)
	e.maxRow = make([]float64, k)
	for i, r := range refs {
		e.normSrc[i] = maxNormalise(referenceSource(r))
		e.maxRow[i] = linalg.MaxAbs(r.DM.RowSums())
	}
	var err error
	e.weightMat, err = linalg.MatrixFromColumns(e.normSrc)
	if err != nil {
		return nil, err
	}
	e.gram = linalg.NewGramSystem(e.weightMat)
	if opts.SolverIterations > 0 {
		// The projected-gradient solver is selected: every solve needs
		// the Lipschitz constant, so pay the power iteration now.
		e.gram.Lipschitz()
	}

	e.buildPattern()

	e.scratch.New = func() any {
		return &engineScratch{
			// The pattern CSR carries no values; its entry count is the
			// length of ColIdx.
			val:   make([]float64, len(e.pat.ColIdx)),
			den:   make([]float64, e.ns),
			scale: make([]float64, e.ns),
			w:     make([]float64, len(e.refs)),
			b:     make([]float64, e.ns),
		}
	}
	return e, nil
}

// buildPattern merges the references' sparsity patterns row by row into
// one union CSR pattern and records, for every stored entry of every
// reference, its position in that pattern.
func (e *Engine) buildPattern() {
	k := len(e.refs)
	indptr := make([]int, e.ns+1)
	seen := make([]bool, e.nt)
	posOf := make([]int, e.nt)
	touched := make([]int, 0, 16)
	var colIdx []int
	e.slots = make([][]int, k)
	for kk, r := range e.refs {
		e.slots[kk] = make([]int, r.DM.NNZ())
	}
	e.zeroRow = make([]bool, e.ns)
	for i := 0; i < e.ns; i++ {
		indptr[i] = len(colIdx)
		touched = touched[:0]
		for _, r := range e.refs {
			cols, _ := r.DM.Row(i)
			for _, c := range cols {
				if !seen[c] {
					seen[c] = true
					touched = append(touched, c)
				}
			}
		}
		insertionSortInts(touched)
		base := len(colIdx)
		for idx, c := range touched {
			posOf[c] = base + idx
			colIdx = append(colIdx, c)
			seen[c] = false
		}
		for kk, r := range e.refs {
			start := r.DM.IndPtr[i]
			cols, _ := r.DM.Row(i)
			for t, c := range cols {
				e.slots[kk][start+t] = posOf[c]
			}
		}
		e.zeroRow[i] = len(colIdx) == base && base == indptr[i]
	}
	indptr[e.ns] = len(colIdx)
	e.pat = &sparse.CSR{Rows: e.ns, Cols: e.nt, IndPtr: indptr, ColIdx: colIdx}
}

// insertionSortInts sorts a small slice in place; union rows hold only
// the handful of target units a source unit overlaps.
func insertionSortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// SourceUnits returns |U^s|.
func (e *Engine) SourceUnits() int { return e.ns }

// TargetUnits returns |U^t|.
func (e *Engine) TargetUnits() int { return e.nt }

// References returns the number of references.
func (e *Engine) References() int { return len(e.refs) }

// ZeroSupportRows reports the precomputed Eq. 14 degenerate mask:
// true for source units in which every reference is zero. The returned
// slice is shared and must not be mutated.
func (e *Engine) ZeroSupportRows() []bool { return e.zeroRow }

// LearnWeights runs only the weight-learning step (Eq. 15) against the
// precomputed design matrix.
func (e *Engine) LearnWeights(objective []float64) ([]float64, error) {
	if err := e.checkObjective(objective); err != nil {
		return nil, err
	}
	s := e.scratch.Get().(*engineScratch)
	defer e.scratch.Put(s)
	return e.learnWeights(objective, nil, s, nil)
}

// Align crosswalks one objective attribute. Safe for concurrent use.
func (e *Engine) Align(objective []float64) (*Result, error) {
	return e.AlignWithSources(objective, nil)
}

// AlignWithSources is Align with per-call reference source vectors
// overriding the precomputed ones in the weight-learning step (Eq. 15
// only; redistribution always follows the crosswalks, so estimates
// remain volume-preserving). sources may be nil (use precomputed), or
// length len(refs) with nil entries falling back per reference. This
// serves the §4.4.1 robustness protocol, which perturbs published
// source aggregates while the crosswalk files stay exact.
func (e *Engine) AlignWithSources(objective []float64, sources [][]float64) (*Result, error) {
	if err := e.checkObjective(objective); err != nil {
		return nil, err
	}
	s := e.scratch.Get().(*engineScratch)
	defer e.scratch.Put(s)
	beta, err := e.learnWeights(objective, sources, s, nil)
	if err != nil {
		return nil, err
	}
	return e.redistribute(objective, beta, s)
}

// redistribute runs the disaggregation (Eq. 14) and re-aggregation
// (Eq. 17) steps for an already-learned β, using the caller's scratch.
func (e *Engine) redistribute(objective, beta []float64, s *engineScratch) (*Result, error) {
	// Per-reference weight on the Eq. 14 numerator: β_k normalised by
	// the reference's largest source aggregate (see Align's step 2).
	for k, beta_k := range beta {
		s.w[k] = beta_k
		if mx := e.maxRow[k]; mx > 0 {
			s.w[k] = beta_k / mx
		}
	}

	// Numerator Σ_k w_k·DM_rk scattered into the union pattern. Row
	// blocks touch disjoint slot ranges, so the parallel path is exact.
	vm := e.valued(s.val)
	vm.ForEachRowBlock(func(lo, hi int) {
		for p := e.pat.IndPtr[lo]; p < e.pat.IndPtr[hi]; p++ {
			s.val[p] = 0
		}
		for k, r := range e.refs {
			wk := s.w[k]
			if wk == 0 {
				continue
			}
			slot := e.slots[k]
			for i := lo; i < hi; i++ {
				start := r.DM.IndPtr[i]
				_, vals := r.DM.Row(i)
				for t, v := range vals {
					s.val[slot[start+t]] += wk * v
				}
			}
		}
	})

	// Denominator and per-row scale (Eq. 14), degenerate rows zeroed.
	vm.RowSumsInto(s.den)
	var degenerate []int
	for i := 0; i < e.ns; i++ {
		s.scale[i] = 0
		if s.den[i] != 0 {
			s.scale[i] = objective[i] / s.den[i]
		} else if objective[i] != 0 {
			degenerate = append(degenerate, i)
		}
	}
	vm.ScaleRows(s.scale)

	res := &Result{Weights: beta}
	if e.opts.FallbackDM != nil && len(degenerate) > 0 {
		// The fallback's shape is checked only when it is actually
		// needed: a mis-shaped fallback on a problem with no degenerate
		// rows is ignored, matching Align's historical behaviour.
		if fb := e.opts.FallbackDM; fb.Rows != e.ns || fb.Cols != e.nt {
			return nil, fmt.Errorf("core: fallback DM is %dx%d, want %dx%d", fb.Rows, fb.Cols, e.ns, e.nt)
		}
		dmo, err := patchRows(e.materialize(s.val), e.opts.FallbackDM, degenerate, objective)
		if err != nil {
			return nil, err
		}
		res.Target = dmo.ColSums()
		if e.opts.KeepDM {
			res.DM = dmo
		}
		return res, nil
	}

	// Re-aggregation (Eq. 17).
	res.Target = make([]float64, e.nt)
	vm.ColSumsInto(res.Target)
	if e.opts.KeepDM {
		res.DM = e.materialize(s.val)
	}
	return res, nil
}

// AlignAll crosswalks a batch of objectives, fanning the per-attribute
// solves across a pool of workers (0 ⇒ runtime.NumCPU()). The batch
// shares the engine's normal-equations precomputation: all c = Aᵀb
// columns are computed up front as one blocked, parallel AᵀB product
// (bit-identical per column to the single-call path), and each worker
// warm-starts its active-set solves from the previous objective's β.
// Results are written to disjoint slots, so the output order matches
// the input order and is independent of scheduling. On error the first
// failure in input order is returned alongside the results computed so
// far.
func (e *Engine) AlignAll(objectives [][]float64, workers int) ([]*Result, error) {
	n := len(objectives)
	results := make([]*Result, n)
	if n == 0 {
		return results, nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	valid := make([]int, 0, n)
	for i, obj := range objectives {
		if err := e.checkObjective(obj); err != nil {
			errs[i] = err
			continue
		}
		valid = append(valid, i)
	}

	// The shared AᵀB prep only pays off on the cached Gram path with a
	// genuine mixture to learn; k == 1 and the dense escape hatch run
	// the plain per-objective solve.
	k := len(e.refs)
	useGram := !e.opts.DenseSolver && k > 1
	var cs []float64
	var bnorms []float64
	if useGram {
		cs = make([]float64, n*k)
		bnorms = make([]float64, n)
		e.batchGramPrep(objectives, valid, cs, bnorms)
	}

	process := func(i int, warm []float64) []float64 {
		if !useGram {
			results[i], errs[i] = e.Align(objectives[i])
			return nil
		}
		res, err := e.alignPrepared(objectives[i], cs[i*k:(i+1)*k], bnorms[i], warm)
		results[i], errs[i] = res, err
		if err != nil {
			return warm
		}
		return res.Weights
	}

	if workers == 1 || len(valid) <= 1 {
		var warm []float64
		for _, i := range valid {
			warm = process(i, warm)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var warm []float64
				for {
					vi := int(next.Add(1)) - 1
					if vi >= len(valid) {
						return
					}
					warm = process(valid[vi], warm)
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("core: objective %d: %w", i, err)
		}
	}
	return results, nil
}

// batchChunk bounds the normalised-objective buffers of batchGramPrep:
// objectives run through the AᵀB product this many columns at a time.
const batchChunk = 32

// batchGramPrep fills cs (row i holding c_i = Aᵀ·maxNormalise(obj_i))
// and bnorms (‖maxNormalise(obj_i)‖₂) for every valid objective,
// reusing one chunk of column buffers throughout.
func (e *Engine) batchGramPrep(objectives [][]float64, valid []int, cs, bnorms []float64) {
	k := len(e.refs)
	cols := make([][]float64, 0, batchChunk)
	for start := 0; start < len(valid); start += batchChunk {
		end := start + batchChunk
		if end > len(valid) {
			end = len(valid)
		}
		chunk := valid[start:end]
		for len(cols) < len(chunk) {
			cols = append(cols, make([]float64, e.ns))
		}
		for t, i := range chunk {
			maxNormaliseInto(cols[t], objectives[i])
			bnorms[i] = linalg.Norm2(cols[t])
		}
		prod := linalg.MulATB(e.weightMat, cols[:len(chunk)])
		for t, i := range chunk {
			for j := 0; j < k; j++ {
				cs[i*k+j] = prod.At(j, t)
			}
		}
	}
}

// alignPrepared is the batch-path Align: the weight-learning right-hand
// side arrives pre-reduced as c = Aᵀb and ‖b‖₂, and warm optionally
// seeds the active-set solver with the previous objective's β.
func (e *Engine) alignPrepared(objective, c []float64, bnorm float64, warm []float64) (*Result, error) {
	var beta []float64
	var err error
	if e.opts.SolverIterations > 0 {
		beta, err = linalg.SimplexLeastSquaresPGGram(e.gram.G, c, e.gram.Lipschitz(), e.opts.SolverIterations, 0)
	} else {
		beta, err = linalg.SimplexLeastSquaresGramWarm(e.gram.G, c, e.gram.AInf, bnorm, warm)
	}
	if err != nil {
		return nil, err
	}
	s := e.scratch.Get().(*engineScratch)
	defer e.scratch.Put(s)
	return e.redistribute(objective, beta, s)
}

func (e *Engine) checkObjective(objective []float64) error {
	if len(objective) == 0 {
		return ErrNoSourceUnits
	}
	if len(objective) != e.ns {
		return fmt.Errorf("core: objective has %d source units, references have %d", len(objective), e.ns)
	}
	return nil
}

// learnWeights runs Eq. 15 using the cached normal equations of the
// precomputed design matrix, or a per-call system when source overrides
// are given. The objective is max-normalised into the scratch buffer,
// and warm (optional) seeds the active-set solver from a previous β.
func (e *Engine) learnWeights(objective []float64, sources [][]float64, s *engineScratch, warm []float64) ([]float64, error) {
	mat := e.weightMat
	gs := e.gram
	if sources != nil {
		if len(sources) != len(e.refs) {
			return nil, fmt.Errorf("core: %d source overrides for %d references", len(sources), len(e.refs))
		}
		cols := make([][]float64, len(e.refs))
		for k := range e.refs {
			if sources[k] == nil {
				cols[k] = e.normSrc[k]
				continue
			}
			if len(sources[k]) != e.ns {
				return nil, fmt.Errorf("core: source override %d has length %d, want %d", k, len(sources[k]), e.ns)
			}
			cols[k] = maxNormalise(sources[k])
		}
		var err error
		mat, err = linalg.MatrixFromColumns(cols)
		if err != nil {
			return nil, err
		}
		gs = nil
	}
	maxNormaliseInto(s.b, objective)
	if e.opts.DenseSolver {
		if e.opts.SolverIterations > 0 {
			return linalg.SimplexLeastSquaresPG(mat, s.b, e.opts.SolverIterations, 0)
		}
		return linalg.SimplexLeastSquares(mat, s.b)
	}
	if gs == nil {
		// Source overrides change the design matrix, so the cached Gram
		// system does not apply; a single-use one keeps the solve in
		// k-space and bit-identical to an engine with those sources
		// baked in.
		gs = linalg.NewGramSystem(mat)
	}
	if e.opts.SolverIterations > 0 {
		return gs.SimplexLSPG(s.b, e.opts.SolverIterations, 0)
	}
	return gs.SimplexLS(s.b, warm)
}

// valued wraps the union pattern around a value buffer. The returned
// matrix shares IndPtr/ColIdx with the engine and must not escape the
// call that owns buf.
func (e *Engine) valued(buf []float64) *sparse.CSR {
	return &sparse.CSR{Rows: e.ns, Cols: e.nt, IndPtr: e.pat.IndPtr, ColIdx: e.pat.ColIdx, Val: buf}
}

// materialize deep-copies the union pattern with the given values into
// a standalone CSR the caller may keep or mutate.
func (e *Engine) materialize(val []float64) *sparse.CSR {
	return &sparse.CSR{
		Rows: e.ns, Cols: e.nt,
		IndPtr: append([]int(nil), e.pat.IndPtr...),
		ColIdx: append([]int(nil), e.pat.ColIdx...),
		Val:    append([]float64(nil), val...),
	}
}
