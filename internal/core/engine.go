package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"geoalign/internal/linalg"
	"geoalign/internal/snapshot"
	"geoalign/internal/sparse"
)

// Engine is a reusable GeoAlign aligner for crosswalking many
// attributes over one fixed set of references — the §4.3 / Figure 8
// workload. Construction precomputes everything that does not depend
// on the objective attribute:
//
//   - validated shapes (every reference |U^s|×|U^t|),
//   - the Eq. 15 design matrix of max-normalised reference source
//     aggregates, together with its normal-equations form (the k×k
//     Gram matrix AᵀA, ‖A‖∞ and — lazily — the projected-gradient
//     Lipschitz constant), so each per-attribute solve only computes
//     c = Aᵀb in O(ns·k) and then works in k-dimensional space,
//   - each reference crosswalk's row sums and their maximum (the
//     per-reference normaliser of the Eq. 14 numerator),
//   - the union sparsity pattern of the reference crosswalks plus a
//     per-reference map from stored entries into that pattern, so the
//     β-weighted combination fills a flat value buffer with no
//     allocation, sorting or merging per call,
//   - the zero-row mask of source units with no stored entry in any
//     reference (the Eq. 14 degenerate case for every objective).
//
// After construction an Engine is immutable and safe for concurrent
// use: Align may be called from many goroutines, and AlignAll fans a
// batch of objectives across a worker pool. Per-call state lives in
// pooled scratch buffers; no two concurrent calls share mutable data.
type Engine struct {
	ns, nt int
	refs   []Reference
	opts   Options

	weightMat *linalg.Matrix     // Eq. 15 design matrix (ns × k)
	gram      *linalg.GramSystem // its cached normal equations
	normSrc   [][]float64        // its columns: maxNormalise(source_k); nil until first use on snapshot- or delta-derived engines
	nsOnce    sync.Once          // guards the lazy normSrc extraction
	nsReady   atomic.Bool        // normSrc published; the only safe gate for readers outside nsOnce
	rowSums   [][]float64        // row sums per reference crosswalk (the Eq. 14 denominator basis)
	maxRow    []float64          // max |row sum| per reference crosswalk
	pat       *sparse.CSR        // union sparsity pattern (Val is nil)
	slots     [][]int            // slots[k][t]: union position of ref k's t-th entry
	zeroRow   []bool             // no reference has support in this source unit

	// snap owns the mapped snapshot file for snapshot-loaded engines
	// (nil for freshly built ones): the hot arrays above alias the
	// mapping, so it must stay mapped until Close.
	snap *snapshot.File

	fbOnce sync.Once
	fbSums []float64 // cached FallbackDM.RowSums(), computed on first degenerate patch

	scratch sync.Pool
	batch   sync.Pool // *batchScratch for the fused AlignAll chunks
}

// engineScratch is the per-call mutable state of one Align solve.
type engineScratch struct {
	val   []float64 // union-pattern value buffer (the Eq. 14 numerator)
	den   []float64 // its row sums
	scale []float64 // per-row disaggregation factor
	w     []float64 // β scaled by the per-reference normaliser
	b     []float64 // max-normalised objective
	y     []float64 // one reference's re-aggregated column (DMᵀ·scale)
}

// NewEngine validates the references and precomputes the shared
// crosswalk structure. The references' matrices are captured by
// reference and must not be mutated while the engine is in use.
func NewEngine(refs []Reference, opts Options) (*Engine, error) {
	if len(refs) == 0 {
		return nil, ErrNoReferences
	}
	for k, r := range refs {
		if r.DM == nil {
			return nil, fmt.Errorf("core: reference %d (%s) has no disaggregation matrix", k, r.Name)
		}
	}
	ns, nt := refs[0].DM.Rows, refs[0].DM.Cols
	for k, r := range refs {
		if r.DM.Rows != ns || r.DM.Cols != nt {
			return nil, fmt.Errorf("core: reference %d (%s) DM is %dx%d, reference 0 is %dx%d",
				k, r.Name, r.DM.Rows, r.DM.Cols, ns, nt)
		}
		if r.Source != nil && len(r.Source) != ns {
			return nil, fmt.Errorf("core: reference %d (%s) source vector length %d, want %d",
				k, r.Name, len(r.Source), ns)
		}
	}
	e := &Engine{
		ns:   ns,
		nt:   nt,
		refs: append([]Reference(nil), refs...),
		opts: opts,
	}

	// Eq. 15 design matrix and Eq. 14 normalisers.
	k := len(refs)
	e.normSrc = make([][]float64, k)
	e.rowSums = make([][]float64, k)
	e.maxRow = make([]float64, k)
	for i, r := range refs {
		e.normSrc[i] = maxNormalise(referenceSource(r))
		e.rowSums[i] = r.DM.RowSums()
		e.maxRow[i] = linalg.MaxAbs(e.rowSums[i])
	}
	var err error
	e.weightMat, err = linalg.MatrixFromColumns(e.normSrc)
	if err != nil {
		return nil, err
	}
	e.nsReady.Store(true)
	e.gram = linalg.NewGramSystem(e.weightMat)
	if opts.SolverIterations > 0 {
		// The projected-gradient solver is selected: every solve needs
		// the Lipschitz constant, so pay the power iteration now.
		e.gram.Lipschitz()
	}

	e.buildPattern()
	e.initPools()
	return e, nil
}

// initPools installs the scratch-buffer pool factories; called once the
// pattern and dimensions are final (from NewEngine and the snapshot
// loader).
func (e *Engine) initPools() {
	e.scratch.New = func() any {
		return &engineScratch{
			// The pattern CSR carries no values; its entry count is the
			// length of ColIdx.
			val:   make([]float64, len(e.pat.ColIdx)),
			den:   make([]float64, e.ns),
			scale: make([]float64, e.ns),
			w:     make([]float64, len(e.refs)),
			b:     make([]float64, e.ns),
			y:     make([]float64, e.nt),
		}
	}
	e.batch.New = func() any { return newBatchScratch(e) }
}

// Close releases the mapped snapshot backing a snapshot-loaded engine.
// After Close the engine must not be used: its precompute arrays alias
// the mapping. Closing a freshly built engine is a no-op. Close is
// idempotent.
func (e *Engine) Close() error {
	if e.snap == nil {
		return nil
	}
	return e.snap.Close()
}

// FromSnapshot reports whether the engine was loaded from a snapshot.
func (e *Engine) FromSnapshot() bool { return e.snap != nil }

// MappedBytes returns the size of the snapshot backing this engine
// (0 for freshly built engines).
func (e *Engine) MappedBytes() int64 {
	if e.snap == nil {
		return 0
	}
	return e.snap.Size()
}

// PrecomputeBytes estimates the resident size of the engine's
// attribute-independent precompute: crosswalks, design matrix, Gram
// system, union pattern, slot maps and normalisers. For snapshot-loaded
// engines most of it aliases the mapping and is shared page cache
// rather than private heap.
func (e *Engine) PrecomputeBytes() int64 {
	const wordSize = 8
	var n int64
	// The lazy normSrc extraction may race with this accounting (the
	// registry polls PrecomputeBytes while traffic runs); nsReady is the
	// publication gate — e.normSrc itself must not be read without it.
	nsReady := e.nsReady.Load()
	for i, r := range e.refs {
		n += int64(len(r.DM.IndPtr)+len(r.DM.ColIdx)+len(e.slots[i])) * wordSize
		n += int64(len(r.DM.Val)+len(r.Source)+len(e.rowSums[i])) * wordSize
		if nsReady {
			n += int64(len(e.normSrc[i])) * wordSize
		}
	}
	n += int64(len(e.pat.IndPtr)+len(e.pat.ColIdx)) * wordSize
	n += int64(len(e.weightMat.Data)+len(e.gram.Gram().Data)+len(e.maxRow)) * wordSize
	if chol, _ := e.gram.CachedCholesky(); chol != nil {
		n += int64(len(chol.Data)) * wordSize
	}
	n += int64(len(e.zeroRow))
	return n
}

// normSrcCols returns the max-normalised reference source columns,
// extracting them from the design matrix on first use. Snapshot-loaded
// and delta-derived engines skip the extraction at construction time —
// only the source-override path reads these, and the design matrix
// columns hold the exact same bits — which keeps the mmap cold-start
// free of the copy. The nsReady store publishes the slice to readers
// outside the Once (PrecomputeBytes, polled concurrently by the serving
// registry).
func (e *Engine) normSrcCols() [][]float64 {
	e.nsOnce.Do(func() {
		if e.normSrc != nil {
			e.nsReady.Store(true)
			return
		}
		k := len(e.refs)
		cols := make([][]float64, k)
		data := e.weightMat.Data
		for i := 0; i < k; i++ {
			col := make([]float64, e.ns)
			for row := 0; row < e.ns; row++ {
				col[row] = data[row*k+i]
			}
			cols[i] = col
		}
		e.normSrc = cols
		e.nsReady.Store(true)
	})
	return e.normSrc
}

// buildPattern merges the references' sparsity patterns row by row into
// one union CSR pattern and records, for every stored entry of every
// reference, its position in that pattern.
func (e *Engine) buildPattern() {
	k := len(e.refs)
	indptr := make([]int, e.ns+1)
	seen := make([]bool, e.nt)
	posOf := make([]int, e.nt)
	touched := make([]int, 0, 16)
	var colIdx []int
	e.slots = make([][]int, k)
	for kk, r := range e.refs {
		e.slots[kk] = make([]int, r.DM.NNZ())
	}
	e.zeroRow = make([]bool, e.ns)
	for i := 0; i < e.ns; i++ {
		indptr[i] = len(colIdx)
		touched = touched[:0]
		for _, r := range e.refs {
			cols, _ := r.DM.Row(i)
			for _, c := range cols {
				if !seen[c] {
					seen[c] = true
					touched = append(touched, c)
				}
			}
		}
		insertionSortInts(touched)
		base := len(colIdx)
		for idx, c := range touched {
			posOf[c] = base + idx
			colIdx = append(colIdx, c)
			seen[c] = false
		}
		for kk, r := range e.refs {
			start := r.DM.IndPtr[i]
			cols, _ := r.DM.Row(i)
			for t, c := range cols {
				e.slots[kk][start+t] = posOf[c]
			}
		}
		e.zeroRow[i] = len(colIdx) == base && base == indptr[i]
	}
	indptr[e.ns] = len(colIdx)
	e.pat = &sparse.CSR{Rows: e.ns, Cols: e.nt, IndPtr: indptr, ColIdx: colIdx}
}

// insertionSortInts sorts a small slice in place; union rows hold only
// the handful of target units a source unit overlaps.
func insertionSortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// SourceUnits returns |U^s|.
func (e *Engine) SourceUnits() int { return e.ns }

// TargetUnits returns |U^t|.
func (e *Engine) TargetUnits() int { return e.nt }

// References returns the number of references.
func (e *Engine) References() int { return len(e.refs) }

// ZeroSupportRows reports the precomputed Eq. 14 degenerate mask:
// true for source units in which every reference is zero. The returned
// slice is shared and must not be mutated.
func (e *Engine) ZeroSupportRows() []bool { return e.zeroRow }

// LearnWeights runs only the weight-learning step (Eq. 15) against the
// precomputed design matrix.
func (e *Engine) LearnWeights(objective []float64) ([]float64, error) {
	if err := e.checkObjective(objective); err != nil {
		return nil, err
	}
	s := e.scratch.Get().(*engineScratch)
	defer e.scratch.Put(s)
	return e.learnWeights(objective, nil, s, nil)
}

// LearnWeightsResidual is LearnWeights plus the relative residual
// ‖Aβ − b̂‖₂/‖b̂‖₂ of the weight-learning least-squares system in
// normalised space (b̂ = maxNormalise(objective)). The residual comes
// from the cached Gram system via the identity
// r² = b̂ᵀb̂ − 2βᵀc + βᵀGβ with c = Aᵀb̂, so it costs one O(ns·k)
// reduction and a k×k quadratic form — no extra design-matrix pass.
// The alignment catalog uses it as the reference-fit half of its
// accuracy estimate: a small residual means the engine's references
// explain the objective's source-level distribution well.
func (e *Engine) LearnWeightsResidual(objective []float64) ([]float64, float64, error) {
	if err := e.checkObjective(objective); err != nil {
		return nil, 0, err
	}
	s := e.scratch.Get().(*engineScratch)
	defer e.scratch.Put(s)
	w, err := e.learnWeights(objective, nil, s, nil)
	if err != nil {
		return nil, 0, err
	}
	// learnWeights leaves b̂ in s.b.
	var bb float64
	for _, v := range s.b {
		bb += v * v
	}
	if bb == 0 {
		return w, 0, nil
	}
	k := len(e.refs)
	c := make([]float64, k)
	e.gram.ApplyTInto(c, s.b)
	g := e.gram.Gram()
	r2 := bb
	for i := 0; i < k; i++ {
		r2 -= 2 * w[i] * c[i]
		for j := 0; j < k; j++ {
			r2 += w[i] * g.At(i, j) * w[j]
		}
	}
	if r2 < 0 {
		r2 = 0 // cancellation noise near a perfect fit
	}
	return w, math.Sqrt(r2) / math.Sqrt(bb), nil
}

// PatternNNZ reports the nonzero count of the references' union
// sparsity pattern — the crosswalk density numerator the alignment
// catalog records per engine edge.
func (e *Engine) PatternNNZ() int { return len(e.pat.ColIdx) }

// Align crosswalks one objective attribute. Safe for concurrent use.
func (e *Engine) Align(objective []float64) (*Result, error) {
	return e.AlignWithSources(objective, nil)
}

// AlignContext is Align with cancellation: the context is checked on
// entry and again between the weight-learning and redistribution
// stages. On cancellation it returns ctx.Err() and no result.
func (e *Engine) AlignContext(ctx context.Context, objective []float64) (*Result, error) {
	return e.alignWithSourcesContext(ctx, objective, nil)
}

// AlignWithSources is Align with per-call reference source vectors
// overriding the precomputed ones in the weight-learning step (Eq. 15
// only; redistribution always follows the crosswalks, so estimates
// remain volume-preserving). sources may be nil (use precomputed), or
// length len(refs) with nil entries falling back per reference. This
// serves the §4.4.1 robustness protocol, which perturbs published
// source aggregates while the crosswalk files stay exact.
func (e *Engine) AlignWithSources(objective []float64, sources [][]float64) (*Result, error) {
	return e.alignWithSourcesContext(context.Background(), objective, sources)
}

func (e *Engine) alignWithSourcesContext(ctx context.Context, objective []float64, sources [][]float64) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := e.checkObjective(objective); err != nil {
		return nil, err
	}
	s := e.scratch.Get().(*engineScratch)
	defer e.scratch.Put(s)
	beta, err := e.learnWeights(objective, sources, s, nil)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.redistribute(objective, beta, s)
}

// redistribute runs the disaggregation (Eq. 14) and re-aggregation
// (Eq. 17) steps for an already-learned β, using the caller's scratch.
// When the caller needs the estimated crosswalk (KeepDM) or a fallback
// patch for degenerate rows, the full matrix is built in the union
// pattern; otherwise the target is computed directly in transpose form
// (see redistributeTargets), which never materialises the per-entry
// values.
func (e *Engine) redistribute(objective, beta []float64, s *engineScratch) (*Result, error) {
	if !e.opts.KeepDM && e.opts.FallbackDM == nil {
		res := &Result{Weights: beta, Target: make([]float64, e.nt)}
		e.scaledWeights(s.w, beta)
		e.rowScales(s.scale, s.den, objective, s.w)
		e.redistributeTargets(s.w, s.scale, s.y, res.Target)
		return res, nil
	}
	return e.redistributeDM(objective, beta, s)
}

// scaledWeights fills w with the Eq. 14 numerator weights: β_k
// normalised by the reference's largest source aggregate.
func (e *Engine) scaledWeights(w, beta []float64) {
	for k, bk := range beta {
		w[k] = bk
		if mx := e.maxRow[k]; mx > 0 {
			w[k] = bk / mx
		}
	}
}

// rowScales fills scale with the per-row disaggregation factor
// objective_i / den_i, where den_i = Σ_k w_k·rowsum_k(i) uses the
// cached reference row sums — the same value the union-matrix row sum
// would give, without touching the matrices. Rows with zero support
// (den_i == 0; the crosswalks are non-negative, so association cannot
// manufacture or cancel a denominator) get scale 0: the degenerate
// Eq. 14 case, which drops the row's mass exactly as the full-matrix
// path does when no fallback is configured.
func (e *Engine) rowScales(scale, den, objective, w []float64) {
	for i := range den {
		den[i] = 0
	}
	for k, wk := range w {
		if wk == 0 {
			continue
		}
		rs := e.rowSums[k]
		for i, r := range rs {
			den[i] += wk * r
		}
	}
	for i, d := range den {
		if d != 0 {
			scale[i] = objective[i] / d
		} else {
			scale[i] = 0
		}
	}
}

// redistributeTargets accumulates the re-aggregated estimate directly:
//
//	target = Σ_k w_k · (DM_kᵀ · scale)
//
// which is Eq. 17 applied to the Eq. 14 estimate without forming the
// disaggregation matrix. Each reference's transpose product y is
// computed with rows ascending and combined in reference order; the
// batch path (batch.go) uses the same accumulation orders, so single
// and batched alignment stay bitwise identical. target must be
// zero-initialised; y is scratch of length nt.
func (e *Engine) redistributeTargets(w, scale, y, target []float64) {
	for k, r := range e.refs {
		wk := w[k]
		if wk == 0 {
			continue
		}
		for c := range y {
			y[c] = 0
		}
		for i := 0; i < e.ns; i++ {
			si := scale[i]
			cols, vals := r.DM.Row(i)
			for t, v := range vals {
				y[cols[t]] += v * si
			}
		}
		for c, v := range y {
			target[c] += wk * v
		}
	}
}

// redistributeDM is the full-matrix redistribution path: the Eq. 14
// estimate is materialised in the union sparsity pattern, serving the
// KeepDM and fallback-patch configurations.
func (e *Engine) redistributeDM(objective, beta []float64, s *engineScratch) (*Result, error) {
	e.scaledWeights(s.w, beta)

	// Numerator Σ_k w_k·DM_rk scattered into the union pattern. Row
	// blocks touch disjoint slot ranges, so the parallel path is exact.
	vm := e.valued(s.val)
	vm.ForEachRowBlock(func(lo, hi int) {
		for p := e.pat.IndPtr[lo]; p < e.pat.IndPtr[hi]; p++ {
			s.val[p] = 0
		}
		for k, r := range e.refs {
			wk := s.w[k]
			if wk == 0 {
				continue
			}
			slot := e.slots[k]
			for i := lo; i < hi; i++ {
				start := r.DM.IndPtr[i]
				_, vals := r.DM.Row(i)
				for t, v := range vals {
					s.val[slot[start+t]] += wk * v
				}
			}
		}
	})

	// Denominator and per-row scale (Eq. 14), degenerate rows zeroed.
	vm.RowSumsInto(s.den)
	var degenerate []int
	for i := 0; i < e.ns; i++ {
		s.scale[i] = 0
		if s.den[i] != 0 {
			s.scale[i] = objective[i] / s.den[i]
		} else if objective[i] != 0 {
			degenerate = append(degenerate, i)
		}
	}
	vm.ScaleRows(s.scale)

	res := &Result{Weights: beta}
	if e.opts.FallbackDM != nil && len(degenerate) > 0 {
		// The fallback's shape is checked only when it is actually
		// needed: a mis-shaped fallback on a problem with no degenerate
		// rows is ignored, matching Align's historical behaviour.
		if fb := e.opts.FallbackDM; fb.Rows != e.ns || fb.Cols != e.nt {
			return nil, fmt.Errorf("core: fallback DM is %dx%d, want %dx%d", fb.Rows, fb.Cols, e.ns, e.nt)
		}
		dmo, err := patchRows(e.materialize(s.val), e.opts.FallbackDM, e.fallbackSums(), degenerate, objective)
		if err != nil {
			return nil, err
		}
		res.Target = dmo.ColSums()
		if e.opts.KeepDM {
			res.DM = dmo
		}
		return res, nil
	}

	// Re-aggregation (Eq. 17).
	res.Target = make([]float64, e.nt)
	vm.ColSumsInto(res.Target)
	if e.opts.KeepDM {
		res.DM = e.materialize(s.val)
	}
	return res, nil
}

// fallbackSums returns the cached row sums of the fallback crosswalk,
// computing them once on first use. Before the cache, every degenerate
// patch re-summed the whole fallback matrix per aligned attribute —
// O(nnz) allocation and work that batch workloads hit once per
// objective.
func (e *Engine) fallbackSums() []float64 {
	e.fbOnce.Do(func() {
		if e.opts.FallbackDM != nil {
			e.fbSums = e.opts.FallbackDM.RowSums()
		}
	})
	return e.fbSums
}

// AlignAll crosswalks a batch of objectives, fanning the per-attribute
// solves across a pool of workers (0 ⇒ runtime.NumCPU()). The batch
// shares the engine's normal-equations precomputation: all c = Aᵀb
// columns are computed up front as one blocked, parallel AᵀB product
// (bit-identical per column to the single-call path), each worker
// warm-starts its active-set solves from the previous objective's β,
// and attributes redistribute in fused chunks that read every
// reference crosswalk row once per chunk instead of once per
// attribute (see batch.go). Results are written to disjoint slots, so
// the output order matches the input order and is independent of
// scheduling. On error the first failure in input order is returned
// alongside the results computed so far.
func (e *Engine) AlignAll(objectives [][]float64, workers int) ([]*Result, error) {
	return e.AlignAllContext(context.Background(), objectives, workers)
}

func (e *Engine) checkObjective(objective []float64) error {
	if len(objective) == 0 {
		return ErrNoSourceUnits
	}
	if len(objective) != e.ns {
		return fmt.Errorf("core: objective has %d source units, references have %d", len(objective), e.ns)
	}
	return nil
}

// learnWeights runs Eq. 15 using the cached normal equations of the
// precomputed design matrix, or a per-call system when source overrides
// are given. The objective is max-normalised into the scratch buffer,
// and warm (optional) seeds the active-set solver from a previous β.
func (e *Engine) learnWeights(objective []float64, sources [][]float64, s *engineScratch, warm []float64) ([]float64, error) {
	mat := e.weightMat
	gs := e.gram
	if sources != nil {
		if len(sources) != len(e.refs) {
			return nil, fmt.Errorf("core: %d source overrides for %d references", len(sources), len(e.refs))
		}
		normSrc := e.normSrcCols()
		cols := make([][]float64, len(e.refs))
		for k := range e.refs {
			if sources[k] == nil {
				cols[k] = normSrc[k]
				continue
			}
			if len(sources[k]) != e.ns {
				return nil, fmt.Errorf("core: source override %d has length %d, want %d", k, len(sources[k]), e.ns)
			}
			cols[k] = maxNormalise(sources[k])
		}
		var err error
		mat, err = linalg.MatrixFromColumns(cols)
		if err != nil {
			return nil, err
		}
		gs = nil
	}
	maxNormaliseInto(s.b, objective)
	if e.opts.DenseSolver {
		if e.opts.SolverIterations > 0 {
			return linalg.SimplexLeastSquaresPG(mat, s.b, e.opts.SolverIterations, 0)
		}
		return linalg.SimplexLeastSquares(mat, s.b)
	}
	if gs == nil {
		// Source overrides change the design matrix, so the cached Gram
		// system does not apply; a single-use one keeps the solve in
		// k-space and bit-identical to an engine with those sources
		// baked in.
		gs = linalg.NewGramSystem(mat)
	}
	if e.opts.SolverIterations > 0 {
		return gs.SimplexLSPG(s.b, e.opts.SolverIterations, 0)
	}
	return gs.SimplexLS(s.b, warm)
}

// valued wraps the union pattern around a value buffer. The returned
// matrix shares IndPtr/ColIdx with the engine and must not escape the
// call that owns buf.
func (e *Engine) valued(buf []float64) *sparse.CSR {
	return &sparse.CSR{Rows: e.ns, Cols: e.nt, IndPtr: e.pat.IndPtr, ColIdx: e.pat.ColIdx, Val: buf}
}

// materialize deep-copies the union pattern with the given values into
// a standalone CSR the caller may keep or mutate.
func (e *Engine) materialize(val []float64) *sparse.CSR {
	return &sparse.CSR{
		Rows: e.ns, Cols: e.nt,
		IndPtr: append([]int(nil), e.pat.IndPtr...),
		ColIdx: append([]int(nil), e.pat.ColIdx...),
		Val:    append([]float64(nil), val...),
	}
}
