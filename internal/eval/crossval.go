package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"geoalign/internal/core"
	"geoalign/internal/synth"
)

// The population-level reference datasets the paper's dasymetric
// baselines use (§4.1).
var dasymetricReferences = []string{
	"Population",
	"USPS Residential Address",
	"USPS Business Address",
}

// AreaDatasetName is the geometric dataset used by areal weighting.
const AreaDatasetName = "Area (Sq. Miles)"

// CVRow is one cross-validated test: NRMSE per method for one held-out
// dataset. Entries are NaN when the paper's protocol skips them (a
// method cannot reference the dataset it is being tested on).
type CVRow struct {
	Dataset        string
	GeoAlign       float64
	Dasymetric     map[string]float64 // reference name -> NRMSE
	ArealWeighting float64
	Weights        map[string]float64 // GeoAlign's learned β per reference
}

// CVReport is the output of the Figure 5 experiment for one universe.
type CVReport struct {
	Universe string
	Rows     []CVRow
}

// CrossValidate runs the paper's leave-one-dataset-out protocol: each
// dataset in turn is the objective; every other dataset serves as a
// GeoAlign reference; the dasymetric baselines each use one
// population-level dataset; areal weighting uses the area dataset (or a
// geometric area DM when the catalog carries none, as in New York).
func CrossValidate(cat *synth.Catalog) (*CVReport, error) {
	areaDS := cat.ByName(AreaDatasetName)
	var areaDM = areaDS
	if areaDM == nil {
		// NY catalog carries no Area dataset; derive the geometric one.
		a, err := cat.Universe.AreaDataset()
		if err != nil {
			return nil, fmt.Errorf("eval: computing area reference: %w", err)
		}
		areaDM = a
	}

	report := &CVReport{Universe: cat.Universe.Name}
	for _, test := range cat.Datasets {
		row := CVRow{
			Dataset:        test.Name,
			Dasymetric:     make(map[string]float64),
			Weights:        make(map[string]float64),
			ArealWeighting: math.NaN(),
		}

		// GeoAlign with all remaining datasets as references.
		var refs []core.Reference
		var refNames []string
		for _, d := range cat.Datasets {
			if d.Name == test.Name {
				continue
			}
			refs = append(refs, core.Reference{Name: d.Name, Source: d.Source, DM: d.DM})
			refNames = append(refNames, d.Name)
		}
		res, err := core.Align(core.Problem{Objective: test.Source, References: refs}, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("eval: GeoAlign on %q: %w", test.Name, err)
		}
		row.GeoAlign = NRMSE(res.Target, test.Target)
		for k, n := range refNames {
			row.Weights[n] = res.Weights[k]
		}

		// Dasymetric baselines (skipped when testing their own reference).
		for _, refName := range dasymetricReferences {
			if refName == test.Name {
				row.Dasymetric[refName] = math.NaN()
				continue
			}
			ref := cat.ByName(refName)
			if ref == nil {
				row.Dasymetric[refName] = math.NaN()
				continue
			}
			pred, err := core.Dasymetric(test.Source, core.Reference{Name: refName, Source: ref.Source, DM: ref.DM})
			if err != nil {
				return nil, fmt.Errorf("eval: dasymetric(%q) on %q: %w", refName, test.Name, err)
			}
			row.Dasymetric[refName] = NRMSE(pred, test.Target)
		}

		// Areal weighting (skipped when testing the area dataset itself).
		if test.Name != AreaDatasetName {
			pred, err := core.ArealWeighting(test.Source, areaDM.DM)
			if err != nil {
				return nil, fmt.Errorf("eval: areal weighting on %q: %w", test.Name, err)
			}
			row.ArealWeighting = NRMSE(pred, test.Target)
		}

		report.Rows = append(report.Rows, row)
	}
	sort.Slice(report.Rows, func(i, j int) bool { return report.Rows[i].Dataset < report.Rows[j].Dataset })
	return report, nil
}

// ArealWeightingFactor returns how many times worse areal weighting is
// than GeoAlign on average across the valid rows — the §4.2 claim of
// ">15×" (NY) and ">50×" (US).
func (r *CVReport) ArealWeightingFactor() float64 {
	var ratios []float64
	for _, row := range r.Rows {
		if !math.IsNaN(row.ArealWeighting) && row.GeoAlign > 0 {
			ratios = append(ratios, row.ArealWeighting/row.GeoAlign)
		}
	}
	if len(ratios) == 0 {
		return math.NaN()
	}
	return Mean(ratios)
}

// Table renders the report as an aligned text table matching Figure 5's
// series: GeoAlign and the three dasymetric baselines, with the areal
// weighting factor summarised below.
func (r *CVReport) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5 — NRMSE by dataset (%s)\n", r.Universe)
	fmt.Fprintf(&sb, "%-28s %10s %12s %12s %12s %12s\n",
		"dataset", "GeoAlign", "dasy(Pop)", "dasy(Res)", "dasy(Bus)", "arealWt")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-28s %10.4f %12s %12s %12s %12s\n",
			row.Dataset,
			row.GeoAlign,
			fmtNaN(row.Dasymetric["Population"]),
			fmtNaN(row.Dasymetric["USPS Residential Address"]),
			fmtNaN(row.Dasymetric["USPS Business Address"]),
			fmtNaN(row.ArealWeighting),
		)
	}
	fmt.Fprintf(&sb, "areal weighting / GeoAlign mean NRMSE factor: %.1fx\n", r.ArealWeightingFactor())
	return sb.String()
}

func fmtNaN(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.4f", v)
}

// WinLossSummary counts, over rows where the comparison is defined, how
// often GeoAlign is at least as accurate (within slack×NRMSE) as the
// best dasymetric baseline — the "equal or better" claim of §4.2.
func (r *CVReport) WinLossSummary(slack float64) (wins, comparisons int) {
	for _, row := range r.Rows {
		best := math.Inf(1)
		for _, v := range row.Dasymetric {
			if !math.IsNaN(v) && v < best {
				best = v
			}
		}
		if math.IsInf(best, 1) {
			continue
		}
		comparisons++
		if row.GeoAlign <= best*(1+slack) {
			wins++
		}
	}
	return wins, comparisons
}
