package eval

import (
	"strings"
	"testing"

	"geoalign/internal/synth"
)

func TestExtensionExperiment(t *testing.T) {
	cat := testCatalog(t, synth.UnitedStates)
	rep, err := ExtensionExperiment(cat, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 10 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// GeoAlign should beat the data-free pycnophylactic baseline on a
	// clear majority of datasets (it has references; pycno only has
	// smoothness).
	wins, total := rep.GeoAlignWinsOver("pycno")
	if total != 10 {
		t.Fatalf("pycno comparisons = %d", total)
	}
	if wins < 7 {
		t.Errorf("GeoAlign beats pycnophylactic on only %d/%d", wins, total)
	}
	// And the naive regression at least once exhibits a visible mass
	// error while GeoAlign never does (conservation is structural).
	massBroken := 0
	for _, row := range rep.Rows {
		if row.RegressionMassError > 0.01 {
			massBroken++
		}
	}
	if massBroken == 0 {
		t.Error("naive regression conserved mass on every dataset; ablation premise lost")
	}
	if !strings.Contains(rep.Table(), "EXT1") {
		t.Error("Table missing header")
	}
}

func TestExtensionExperimentGridTooCoarse(t *testing.T) {
	cat := testCatalog(t, synth.UnitedStates)
	// A 4x4 raster cannot give every one of ~300 source units a cell.
	if _, err := ExtensionExperiment(cat, 4); err == nil {
		t.Error("hopelessly coarse grid accepted")
	}
}

func TestExtensionWinsOverUnknownCompetitor(t *testing.T) {
	rep := &ExtensionReport{Rows: []ExtensionRow{{GeoAlign: 1, Pycnophylactic: 2}}}
	if _, total := rep.GeoAlignWinsOver("nonsense"); total != 0 {
		t.Error("unknown competitor counted")
	}
	if wins, total := rep.GeoAlignWinsOver("pycno"); wins != 1 || total != 1 {
		t.Errorf("pycno wins = %d/%d", wins, total)
	}
}

func TestCorrelationExperiment(t *testing.T) {
	cat := testCatalog(t, synth.UnitedStates)
	rep := CorrelationExperiment(cat)
	if len(rep.Names) != 10 || len(rep.Matrix) != 10 {
		t.Fatalf("matrix shape %d/%d", len(rep.Names), len(rep.Matrix))
	}
	for i := range rep.Matrix {
		if rep.Matrix[i][i] != 1 {
			t.Errorf("diagonal [%d] = %v", i, rep.Matrix[i][i])
		}
		for j := range rep.Matrix {
			if rep.Matrix[i][j] != rep.Matrix[j][i] {
				t.Errorf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
	// The engineered USPS collinearity is visible here.
	r, ok := rep.Pair("USPS Residential Address", "USPS Business Address")
	if !ok || r < 0.85 {
		t.Errorf("USPS pair correlation = %v %v", r, ok)
	}
	if name, _ := rep.MostCorrelatedWith("USPS Residential Address"); name == "" {
		t.Error("MostCorrelatedWith failed")
	}
	if _, ok := rep.Pair("nope", "Population"); ok {
		t.Error("unknown name resolved")
	}
	if name, _ := rep.MostCorrelatedWith("nope"); name != "" {
		t.Error("unknown name resolved in MostCorrelatedWith")
	}
	if !strings.Contains(rep.Table(), "correlation matrix") {
		t.Error("Table missing header")
	}
}

func TestOneDExperiment(t *testing.T) {
	cat, err := synth.Build1DCatalog(7, 25, nil, 40000)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := OneDExperiment(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Dimension independence in substance: the 2-D shapes recur in 1-D.
	// GeoAlign must be competitive with the best single reference on a
	// majority of datasets and always beat uniform length weighting on
	// the strongly age-structured ones.
	wins := 0
	for _, row := range rep.Rows {
		if row.GeoAlign <= row.BestDasymetric*1.25 {
			wins++
		}
	}
	if wins < 4 {
		t.Errorf("GeoAlign competitive on only %d/6 datasets: %+v", wins, rep.Rows)
	}
	if !strings.Contains(rep.Table(), "1-D histogram") {
		t.Error("Table missing header")
	}
}
