// Package eval implements the paper's experimental protocol (§4): the
// RMSE/NRMSE metrics, the leave-one-dataset-out cross-validation driver
// used for Figures 5a/5b, the runtime-scaling sweep of Figure 6, the
// reference-noise robustness study of Figure 7, and the
// leave-n-references-out selection study of Figure 8.
package eval

import (
	"fmt"
	"math"
)

// RMSE returns the root mean squared error between a prediction and the
// ground truth. Panics on length mismatch (a programming error).
func RMSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("eval: RMSE length mismatch %d vs %d", len(pred), len(truth)))
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// NRMSE returns RMSE normalised by the mean of the measured (truth)
// data, the paper's cross-dataset comparison metric (§4.2). A zero-mean
// truth yields NaN, signalling an undefined normalisation.
func NRMSE(pred, truth []float64) float64 {
	m := Mean(truth)
	if m == 0 {
		return math.NaN()
	}
	return RMSE(pred, truth) / m
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Pearson returns the Pearson correlation coefficient of a and b
// (0 when either is constant).
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("eval: Pearson length mismatch %d vs %d", len(a), len(b)))
	}
	n := float64(len(a))
	if n == 0 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

// BoxStats summarises a sample the way Figure 7's box plots do.
type BoxStats struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// NewBoxStats computes box-plot statistics (linear-interpolation
// quantiles) of v.
func NewBoxStats(v []float64) BoxStats {
	n := len(v)
	if n == 0 {
		return BoxStats{}
	}
	s := append([]float64(nil), v...)
	insertionSort(s)
	return BoxStats{
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[n-1],
		Mean:   Mean(s),
		N:      n,
	}
}

func insertionSort(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// LinearFit returns the slope, intercept and R² of the least-squares
// line y = a + b·x — used to verify Figure 6's linear-runtime claim.
func LinearFit(x, y []float64) (slope, intercept, r2 float64) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, my, 0
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return slope, intercept, r2
}
