package eval

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"geoalign/internal/core"
	"geoalign/internal/synth"
)

// NoiseLevels are the §4.4.1 noise percentages.
var NoiseLevels = []float64{1, 2, 5, 10, 20, 30, 50}

// NoiseReplicates is the paper's replication count per level.
const NoiseReplicates = 20

// NoiseCell holds the prediction-deviation distribution for one
// (dataset, noise level) pair: the ratio RMSE(perturbed)/RMSE(original)
// over the replicates.
type NoiseCell struct {
	Dataset string
	Level   float64 // percent
	Ratios  []float64
	Stats   BoxStats
}

// NoiseReport is the Figure 7 experiment output.
type NoiseReport struct {
	Universe string
	Cells    []NoiseCell
}

// NoiseExperiment perturbs every reference's source-level aggregate
// vector with ±level% noise (sign drawn per entry, per replicate) and
// measures the deviation of GeoAlign's prediction from the unperturbed
// run, for every dataset in the catalog as the test objective.
//
// Replicates run in parallel; every replicate derives its own RNG from
// (seed, dataset, level, replicate), so results are deterministic and
// independent of scheduling.
func NoiseExperiment(cat *synth.Catalog, levels []float64, replicates int, seed int64) (*NoiseReport, error) {
	if levels == nil {
		levels = NoiseLevels
	}
	if replicates <= 0 {
		replicates = NoiseReplicates
	}
	report := &NoiseReport{Universe: cat.Universe.Name}

	for di, test := range cat.Datasets {
		refs := referencesExcluding(cat, test.Name)
		// One cached engine per test dataset: noise perturbs only the
		// source vectors feeding weight learning (Eq. 15), so every
		// replicate reuses the engine's crosswalk precomputation and passes
		// its perturbed sources per call. The engine is safe to share
		// across the replicate goroutines.
		engine, err := core.NewEngine(refs, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("eval: noise baseline on %q: %w", test.Name, err)
		}
		base, err := engine.Align(test.Source)
		if err != nil {
			return nil, fmt.Errorf("eval: noise baseline on %q: %w", test.Name, err)
		}
		baseRMSE := RMSE(base.Target, test.Target)
		for li, level := range levels {
			cell := NoiseCell{Dataset: test.Name, Level: level, Ratios: make([]float64, replicates)}
			errs := make([]error, replicates)
			var wg sync.WaitGroup
			sem := make(chan struct{}, runtime.GOMAXPROCS(0))
			for rep := 0; rep < replicates; rep++ {
				wg.Add(1)
				sem <- struct{}{}
				go func(rep int) {
					defer wg.Done()
					defer func() { <-sem }()
					repSeed := seed ^ int64(di)<<40 ^ int64(li)<<24 ^ int64(rep)<<8 ^ 0x9e3779b9
					rng := rand.New(rand.NewSource(repSeed))
					noisy := perturbSources(rng, refs, level)
					res, err := engine.AlignWithSources(test.Source, noisy)
					if err != nil {
						errs[rep] = fmt.Errorf("eval: noisy run on %q: %w", test.Name, err)
						return
					}
					r := RMSE(res.Target, test.Target)
					switch {
					case baseRMSE > 0:
						cell.Ratios[rep] = r / baseRMSE
					case r == 0:
						cell.Ratios[rep] = 1
					default:
						cell.Ratios[rep] = math.Inf(1)
					}
				}(rep)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
			cell.Stats = NewBoxStats(cell.Ratios)
			report.Cells = append(report.Cells, cell)
		}
	}
	return report, nil
}

// perturbSources applies ±level% multiplicative noise to each
// reference's source aggregate vector (the paper perturbs the source
// level only; the disaggregation matrices stay exact) and returns the
// per-reference override vectors for Engine.AlignWithSources.
func perturbSources(rng *rand.Rand, refs []core.Reference, level float64) [][]float64 {
	out := make([][]float64, len(refs))
	for k, r := range refs {
		src := r.Source
		if src == nil {
			src = r.DM.RowSums()
		}
		noisy := make([]float64, len(src))
		for i, v := range src {
			sign := 1.0
			if rng.Intn(2) == 0 {
				sign = -1
			}
			noisy[i] = v * (1 + sign*level/100)
			if noisy[i] < 0 {
				noisy[i] = 0
			}
		}
		out[k] = noisy
	}
	return out
}

func referencesExcluding(cat *synth.Catalog, name string) []core.Reference {
	var refs []core.Reference
	for _, d := range cat.Datasets {
		if d.Name == name {
			continue
		}
		refs = append(refs, core.Reference{Name: d.Name, Source: d.Source, DM: d.DM})
	}
	return refs
}

// MeanDeviationAt returns the mean prediction-deviation ratio across
// datasets at one noise level.
func (r *NoiseReport) MeanDeviationAt(level float64) float64 {
	var vals []float64
	for _, c := range r.Cells {
		if c.Level == level {
			vals = append(vals, c.Stats.Mean)
		}
	}
	if len(vals) == 0 {
		return math.NaN()
	}
	return Mean(vals)
}

// Table renders the Figure 7 box statistics.
func (r *NoiseReport) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 7 — RMSE(perturbed)/RMSE(orig.) by noise level (%s)\n", r.Universe)
	fmt.Fprintf(&sb, "%-28s %6s %8s %8s %8s %8s %8s %8s\n",
		"dataset", "noise%", "min", "q1", "median", "q3", "max", "mean")
	for _, c := range r.Cells {
		fmt.Fprintf(&sb, "%-28s %6.0f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			c.Dataset, c.Level, c.Stats.Min, c.Stats.Q1, c.Stats.Median, c.Stats.Q3, c.Stats.Max, c.Stats.Mean)
	}
	return sb.String()
}
