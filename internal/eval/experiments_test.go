package eval

import (
	"math"
	"strings"
	"testing"

	"geoalign/internal/synth"
)

// testCatalog builds a small but structurally faithful US-style catalog
// once for the experiment tests.
func testCatalog(t testing.TB, kind synth.CatalogKind) *synth.Catalog {
	t.Helper()
	var cfg synth.Config
	var name string
	if kind == synth.NewYork {
		cfg = synth.NYConfig(101, 0.05) // ~90 source units
		name = "New York State"
	} else {
		cfg = synth.USConfig(101, 0.01) // ~302 source units
		name = "United States"
	}
	u, err := synth.BuildUniverse(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := synth.BuildCatalog(kind, u, 40000)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestCrossValidateUS(t *testing.T) {
	cat := testCatalog(t, synth.UnitedStates)
	rep, err := CrossValidate(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if math.IsNaN(row.GeoAlign) || row.GeoAlign < 0 {
			t.Errorf("%s: GeoAlign NRMSE = %v", row.Dataset, row.GeoAlign)
		}
		// Weights recorded for all 9 references.
		if len(row.Weights) != 9 {
			t.Errorf("%s: %d weights", row.Dataset, len(row.Weights))
		}
	}
	// Protocol skips: dasymetric-by-population is not evaluated on the
	// population dataset; areal weighting not on the area dataset.
	for _, row := range rep.Rows {
		if row.Dataset == "Population" && !math.IsNaN(row.Dasymetric["Population"]) {
			t.Error("population dasymetric evaluated on its own reference")
		}
		if row.Dataset == AreaDatasetName && !math.IsNaN(row.ArealWeighting) {
			t.Error("areal weighting evaluated on the area dataset")
		}
	}
	// Shape check: GeoAlign at least as accurate as the best dasymetric
	// baseline on a clear majority of datasets (the paper's headline).
	wins, comparisons := rep.WinLossSummary(0.10)
	if comparisons < 8 {
		t.Fatalf("only %d comparisons", comparisons)
	}
	if float64(wins) < 0.7*float64(comparisons) {
		t.Errorf("GeoAlign within 10%% of best dasymetric on only %d/%d datasets", wins, comparisons)
	}
	// Areal weighting must be far worse on average (paper: >50x for US;
	// we require an order of magnitude on the synthetic stand-in).
	if f := rep.ArealWeightingFactor(); !(f > 3) {
		t.Errorf("areal weighting factor = %v, want >> 1", f)
	}
	if !strings.Contains(rep.Table(), "Figure 5") {
		t.Error("Table missing header")
	}
}

func TestCrossValidateNY(t *testing.T) {
	cat := testCatalog(t, synth.NewYork)
	rep, err := CrossValidate(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rep.Rows))
	}
	// NY has no Area dataset; areal weighting must still be evaluated
	// via the geometric area DM.
	validAW := 0
	for _, row := range rep.Rows {
		if !math.IsNaN(row.ArealWeighting) {
			validAW++
		}
	}
	if validAW != 8 {
		t.Errorf("areal weighting evaluated on %d/8 NY datasets", validAW)
	}
}

func TestNoiseExperimentStability(t *testing.T) {
	cat := testCatalog(t, synth.UnitedStates)
	rep, err := NoiseExperiment(cat, []float64{5, 50}, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 10*2 {
		t.Fatalf("cells = %d, want 20", len(rep.Cells))
	}
	// Robustness shape: mean deviation stays near 1 even at 50% noise.
	m5 := rep.MeanDeviationAt(5)
	m50 := rep.MeanDeviationAt(50)
	if !(m5 > 0.5 && m5 < 1.5) {
		t.Errorf("mean deviation at 5%% noise = %v, want ≈ 1", m5)
	}
	if !(m50 > 0.4 && m50 < 2.5) {
		t.Errorf("mean deviation at 50%% noise = %v, want near 1", m50)
	}
	if math.IsNaN(rep.MeanDeviationAt(99)) == false {
		t.Error("unknown level should be NaN")
	}
	if !strings.Contains(rep.Table(), "Figure 7") {
		t.Error("Table missing header")
	}
}

func TestSelectionExperimentShapes(t *testing.T) {
	cat := testCatalog(t, synth.UnitedStates)
	rep, err := SelectionExperiment(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 10 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Dropping the least-related references must be nearly free on
	// average (paper: "almost identical to using all references").
	var worstLeastPenalty float64
	var meanPenalty float64
	count := 0
	for _, row := range rep.Rows {
		all := row.NRMSE["using all references"]
		least1 := row.NRMSE["leave 1 least related out"]
		if math.IsNaN(all) || math.IsNaN(least1) || all == 0 {
			continue
		}
		pen := least1/all - 1
		meanPenalty += pen
		if pen > worstLeastPenalty {
			worstLeastPenalty = pen
		}
		count++
	}
	meanPenalty /= float64(count)
	if meanPenalty > 0.15 {
		t.Errorf("mean penalty for dropping least-related reference = %.2f, want ≈ 0", meanPenalty)
	}
	// Ranked reference lists are recorded.
	for _, row := range rep.Rows {
		if len(row.MostRelated) != 9 {
			t.Errorf("%s: %d ranked references", row.Dataset, len(row.MostRelated))
		}
	}
	if !strings.Contains(rep.Table(), "Figure 8") {
		t.Error("Table missing header")
	}
}

func TestRuntimeExperimentLinear(t *testing.T) {
	specs := PaperRuntimeSpecs(0.05) // ~1512 source units at the top end
	rep, err := RuntimeExperiment(specs, 5, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 6 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Seconds <= 0 {
			t.Errorf("%s: runtime %v", p.Universe, p.Seconds)
		}
	}
	// Monotone-ish growth and a decent linear fit vs source units.
	if rep.Points[5].Seconds < rep.Points[0].Seconds {
		t.Errorf("US slower than NY expected: %v vs %v", rep.Points[5].Seconds, rep.Points[0].Seconds)
	}
	if rep.SourceR2 < 0.8 {
		t.Errorf("runtime vs source units R² = %v, want linear-ish", rep.SourceR2)
	}
	if !strings.Contains(rep.Table(), "Figure 6") {
		t.Error("Table missing header")
	}
}

func TestPaperRuntimeSpecsScaling(t *testing.T) {
	full := PaperRuntimeSpecs(1)
	if full[5].SourceUnits != 30238 || full[5].TargetUnits != 3142 {
		t.Errorf("full-scale US = %+v", full[5])
	}
	small := PaperRuntimeSpecs(0.001)
	for _, s := range small {
		if s.SourceUnits < 10 || s.TargetUnits < 2 {
			t.Errorf("spec below floor: %+v", s)
		}
	}
}

func TestRuntimeBreakdown(t *testing.T) {
	bd, err := RuntimeBreakdown(2000, 200, 5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total <= 0 || bd.WeightLearning < 0 || bd.Disaggregation < 0 {
		t.Errorf("breakdown = %+v", bd)
	}
	if !strings.Contains(bd.String(), "stage breakdown") {
		t.Errorf("String = %q", bd.String())
	}
}

func TestRuntimeStability(t *testing.T) {
	cat := testCatalog(t, synth.UnitedStates)
	st, err := RuntimeStability(cat, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Seconds) != 10 {
		t.Fatalf("timed %d datasets", len(st.Seconds))
	}
	// §4.3: stable across datasets — allow a generous spread at this
	// small scale, but catch order-of-magnitude instability.
	if st.MaxOverMin > 25 {
		t.Errorf("runtime spread max/min = %v", st.MaxOverMin)
	}
}
