package eval

import (
	"fmt"
	"strings"

	"geoalign/internal/synth"
)

// CorrelationReport is the source-level Pearson correlation matrix over
// a catalog's datasets — the diagnostic behind the paper's §4.4.2
// discussion (e.g. the ≈96% USPS residential/business correlation that
// explains why dropping one of them is free).
type CorrelationReport struct {
	Universe string
	Names    []string
	Matrix   [][]float64 // Matrix[i][j] = corr(dataset i, dataset j)
}

// CorrelationExperiment computes the pairwise source-level correlation
// matrix of every dataset in the catalog.
func CorrelationExperiment(cat *synth.Catalog) *CorrelationReport {
	n := len(cat.Datasets)
	rep := &CorrelationReport{Universe: cat.Universe.Name}
	rep.Matrix = make([][]float64, n)
	for i, d := range cat.Datasets {
		rep.Names = append(rep.Names, d.Name)
		rep.Matrix[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		rep.Matrix[i][i] = 1
		for j := i + 1; j < n; j++ {
			r := Pearson(cat.Datasets[i].Source, cat.Datasets[j].Source)
			rep.Matrix[i][j] = r
			rep.Matrix[j][i] = r
		}
	}
	return rep
}

// Pair looks up the correlation between two named datasets (NaN-free;
// returns 0, false when either name is unknown).
func (r *CorrelationReport) Pair(a, b string) (float64, bool) {
	ai, bi := -1, -1
	for i, n := range r.Names {
		if n == a {
			ai = i
		}
		if n == b {
			bi = i
		}
	}
	if ai < 0 || bi < 0 {
		return 0, false
	}
	return r.Matrix[ai][bi], true
}

// MostCorrelatedWith returns the other dataset most correlated (by
// absolute value) with the named one, or "" when unknown.
func (r *CorrelationReport) MostCorrelatedWith(name string) (string, float64) {
	self := -1
	for i, n := range r.Names {
		if n == name {
			self = i
		}
	}
	if self < 0 {
		return "", 0
	}
	best, bestAbs := "", -1.0
	for j, n := range r.Names {
		if j == self {
			continue
		}
		a := r.Matrix[self][j]
		if a < 0 {
			a = -a
		}
		if a > bestAbs {
			best, bestAbs = n, a
		}
	}
	return best, bestAbs
}

// Table renders a compact lower-triangular correlation matrix using
// short column indices (full names listed above the grid).
func (r *CorrelationReport) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Source-level correlation matrix (%s)\n", r.Universe)
	for i, n := range r.Names {
		fmt.Fprintf(&sb, "  [%2d] %s\n", i, n)
	}
	sb.WriteString("      ")
	for j := range r.Names {
		fmt.Fprintf(&sb, "%6s", fmt.Sprintf("[%d]", j))
	}
	sb.WriteByte('\n')
	for i := range r.Names {
		fmt.Fprintf(&sb, "  [%2d]", i)
		for j := 0; j <= i; j++ {
			fmt.Fprintf(&sb, "%6.2f", r.Matrix[i][j])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
