package eval

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"geoalign/internal/core"
	"geoalign/internal/synth"
)

// RuntimePoint is one universe's measurement in the Figure 6 sweep.
type RuntimePoint struct {
	Universe    string
	SourceUnits int
	TargetUnits int
	Seconds     float64 // mean wall time of one GeoAlign run
	Trials      int
}

// RuntimeReport is the Figure 6 experiment output.
type RuntimeReport struct {
	Points []RuntimePoint
	// Linear-fit diagnostics for runtime vs source units and vs target
	// units (the paper claims linear scaling in both).
	SourceSlope, SourceR2 float64
	TargetSlope, TargetR2 float64
}

// RuntimeSpec describes one universe in the sweep.
type RuntimeSpec struct {
	Name        string
	SourceUnits int
	TargetUnits int
}

// PaperRuntimeSpecs returns the six universes of §4.3 at their real
// unit counts, scaled by the given factor (1.0 = full scale:
// 30238 zips × 3142 counties for the US).
func PaperRuntimeSpecs(scale float64) []RuntimeSpec {
	full := []RuntimeSpec{
		{"New York State", 1794, 62},
		{"Mid-Atlantic States", 4990, 150},
		{"Northeast States", 7022, 217},
		{"Eastern Time Zone States", 12486, 1052},
		{"Non-West States", 22628, 2693},
		{"United States", 30238, 3142},
	}
	out := make([]RuntimeSpec, len(full))
	for i, s := range full {
		out[i] = RuntimeSpec{
			Name:        s.Name,
			SourceUnits: maxI(int(float64(s.SourceUnits)*scale), 10),
			TargetUnits: maxI(int(float64(s.TargetUnits)*scale), 2),
		}
	}
	return out
}

// RuntimeExperiment measures GeoAlign end-to-end wall time (weight
// learning + disaggregation + re-aggregation) on synthetic problems at
// each spec's unit counts, averaged over trials, with nrefs references
// — mirroring §4.3 where data preparation is excluded and only the
// algorithm is timed.
func RuntimeExperiment(specs []RuntimeSpec, nrefs, trials int, seed int64) (*RuntimeReport, error) {
	if nrefs <= 0 {
		nrefs = 7
	}
	if trials <= 0 {
		trials = 10
	}
	rng := rand.New(rand.NewSource(seed))
	report := &RuntimeReport{}
	for _, spec := range specs {
		p := synth.ScalingProblem(rng, spec.SourceUnits, spec.TargetUnits, nrefs)
		// Warm-up run outside the timed region.
		if _, err := core.Align(p, core.Options{}); err != nil {
			return nil, fmt.Errorf("eval: runtime warm-up for %q: %w", spec.Name, err)
		}
		start := time.Now()
		for t := 0; t < trials; t++ {
			if _, err := core.Align(p, core.Options{}); err != nil {
				return nil, fmt.Errorf("eval: runtime trial for %q: %w", spec.Name, err)
			}
		}
		mean := time.Since(start).Seconds() / float64(trials)
		report.Points = append(report.Points, RuntimePoint{
			Universe:    spec.Name,
			SourceUnits: spec.SourceUnits,
			TargetUnits: spec.TargetUnits,
			Seconds:     mean,
			Trials:      trials,
		})
	}
	xs := make([]float64, len(report.Points))
	xt := make([]float64, len(report.Points))
	y := make([]float64, len(report.Points))
	for i, pt := range report.Points {
		xs[i] = float64(pt.SourceUnits)
		xt[i] = float64(pt.TargetUnits)
		y[i] = pt.Seconds
	}
	report.SourceSlope, _, report.SourceR2 = LinearFit(xs, y)
	report.TargetSlope, _, report.TargetR2 = LinearFit(xt, y)
	return report, nil
}

// StageBreakdown times GeoAlign's three stages separately at one
// problem size, supporting the paper's §4.3 observation that the
// disaggregation-matrix construction dominates ("over 90%" in their
// SciPy implementation; the exact split depends on the linear-algebra
// substrate, which is why we measure rather than assume).
type StageBreakdown struct {
	SourceUnits, TargetUnits       int
	WeightLearning, Disaggregation float64 // seconds per run
	Total                          float64
}

// RuntimeBreakdown measures the stage split at the given size, averaged
// over trials. Disaggregation here covers steps 2+3 (building DM̂_o and
// re-aggregating), matching the paper's accounting.
func RuntimeBreakdown(ns, nt, nrefs, trials int, seed int64) (*StageBreakdown, error) {
	if trials <= 0 {
		trials = 10
	}
	rng := rand.New(rand.NewSource(seed))
	p := synth.ScalingProblem(rng, ns, nt, nrefs)
	if _, err := core.Align(p, core.Options{}); err != nil {
		return nil, err
	}
	out := &StageBreakdown{SourceUnits: ns, TargetUnits: nt}

	start := time.Now()
	for t := 0; t < trials; t++ {
		if _, err := core.LearnWeights(p, core.Options{}); err != nil {
			return nil, err
		}
	}
	out.WeightLearning = time.Since(start).Seconds() / float64(trials)

	start = time.Now()
	for t := 0; t < trials; t++ {
		if _, err := core.Align(p, core.Options{}); err != nil {
			return nil, err
		}
	}
	out.Total = time.Since(start).Seconds() / float64(trials)
	out.Disaggregation = out.Total - out.WeightLearning
	if out.Disaggregation < 0 {
		out.Disaggregation = 0
	}
	return out, nil
}

// String renders the breakdown.
func (s *StageBreakdown) String() string {
	frac := 0.0
	if s.Total > 0 {
		frac = s.Disaggregation / s.Total * 100
	}
	return fmt.Sprintf(
		"stage breakdown at %d×%d: weight learning %.4fs, disaggregation+re-aggregation %.4fs (%.0f%% of %.4fs total)",
		s.SourceUnits, s.TargetUnits, s.WeightLearning, s.Disaggregation, frac, s.Total)
}

// BatchThroughputResult records the many-attribute workload comparison:
// realigning a batch of attributes over one fixed reference set, the
// pre-engine way (one full core.Align — including crosswalk
// precomputation — per attribute, serially) versus a shared
// core.Engine with AlignAll fanning the per-attribute solves across a
// worker pool.
type BatchThroughputResult struct {
	SourceUnits, TargetUnits int
	Attributes, Workers      int
	SerialSeconds            float64 // per-attribute core.Align loop
	BatchSeconds             float64 // shared engine, AlignAll
	Speedup                  float64 // SerialSeconds / BatchSeconds
}

// BatchThroughput measures both paths on a synthetic problem at the
// given size with nattrs objective attributes, averaged over trials.
// workers <= 0 uses one worker per CPU.
func BatchThroughput(ns, nt, nrefs, nattrs, workers, trials int, seed int64) (*BatchThroughputResult, error) {
	if nattrs <= 0 {
		nattrs = 32
	}
	if trials <= 0 {
		trials = 3
	}
	rng := rand.New(rand.NewSource(seed))
	p := synth.ScalingProblem(rng, ns, nt, nrefs)
	objectives := make([][]float64, nattrs)
	for a := range objectives {
		obj := make([]float64, ns)
		for i := range obj {
			obj[i] = rng.Float64() * 1e4
		}
		objectives[a] = obj
	}
	out := &BatchThroughputResult{SourceUnits: ns, TargetUnits: nt, Attributes: nattrs, Workers: workers}

	// Warm-up both paths outside the timed region.
	if _, err := core.Align(core.Problem{Objective: objectives[0], References: p.References}, core.Options{}); err != nil {
		return nil, fmt.Errorf("eval: batch warm-up: %w", err)
	}
	engine, err := core.NewEngine(p.References, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("eval: batch engine: %w", err)
	}
	if _, err := engine.AlignAll(objectives[:2], workers); err != nil {
		return nil, fmt.Errorf("eval: batch warm-up: %w", err)
	}

	start := time.Now()
	for t := 0; t < trials; t++ {
		for _, obj := range objectives {
			if _, err := core.Align(core.Problem{Objective: obj, References: p.References}, core.Options{}); err != nil {
				return nil, fmt.Errorf("eval: batch serial trial: %w", err)
			}
		}
	}
	out.SerialSeconds = time.Since(start).Seconds() / float64(trials)

	start = time.Now()
	for t := 0; t < trials; t++ {
		if _, err := engine.AlignAll(objectives, workers); err != nil {
			return nil, fmt.Errorf("eval: batch trial: %w", err)
		}
	}
	out.BatchSeconds = time.Since(start).Seconds() / float64(trials)
	if out.BatchSeconds > 0 {
		out.Speedup = out.SerialSeconds / out.BatchSeconds
	}
	return out, nil
}

// String renders the batch throughput comparison.
func (b *BatchThroughputResult) String() string {
	return fmt.Sprintf(
		"batch throughput at %d×%d, %d attributes: serial per-attribute %.4fs, shared engine (workers=%d) %.4fs, speedup %.2fx",
		b.SourceUnits, b.TargetUnits, b.Attributes, b.SerialSeconds, b.Workers, b.BatchSeconds, b.Speedup)
}

// StabilityResult records §4.3's other claim: "GeoAlign runtime is
// stable across experiments for the same universe" — i.e. re-running
// the crosswalk with a different objective attribute costs about the
// same, because every aggregate vector has size |U^s| and the sparse
// matrices share their shapes; only the non-zero counts differ.
type StabilityResult struct {
	Universe   string
	Seconds    map[string]float64 // dataset name -> mean wall time
	MaxOverMin float64
}

// RuntimeStability times one GeoAlign run per catalog dataset (each
// using the remaining datasets as references) and reports the spread.
func RuntimeStability(cat *synth.Catalog, trials int) (*StabilityResult, error) {
	if trials <= 0 {
		trials = 5
	}
	out := &StabilityResult{Universe: cat.Universe.Name, Seconds: make(map[string]float64)}
	mn, mx := 0.0, 0.0
	for _, test := range cat.Datasets {
		refs := referencesExcluding(cat, test.Name)
		p := core.Problem{Objective: test.Source, References: refs}
		if _, err := core.Align(p, core.Options{}); err != nil {
			return nil, err
		}
		start := time.Now()
		for t := 0; t < trials; t++ {
			if _, err := core.Align(p, core.Options{}); err != nil {
				return nil, err
			}
		}
		mean := time.Since(start).Seconds() / float64(trials)
		out.Seconds[test.Name] = mean
		if mn == 0 || mean < mn {
			mn = mean
		}
		if mean > mx {
			mx = mean
		}
	}
	if mn > 0 {
		out.MaxOverMin = mx / mn
	}
	return out, nil
}

// Table renders the Figure 6 series with the linearity diagnostics.
func (r *RuntimeReport) Table() string {
	var sb strings.Builder
	sb.WriteString("Figure 6 — GeoAlign runtime vs number of units\n")
	fmt.Fprintf(&sb, "%-28s %10s %10s %12s\n", "universe", "src units", "tgt units", "runtime(s)")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%-28s %10d %10d %12.6f\n", p.Universe, p.SourceUnits, p.TargetUnits, p.Seconds)
	}
	fmt.Fprintf(&sb, "linear fit vs source units: slope %.3e s/unit, R² %.4f\n", r.SourceSlope, r.SourceR2)
	fmt.Fprintf(&sb, "linear fit vs target units: slope %.3e s/unit, R² %.4f\n", r.TargetSlope, r.TargetR2)
	return sb.String()
}
