package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("perfect RMSE = %v", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMSE = %v, want sqrt(12.5)", got)
	}
	if got := RMSE(nil, nil); got != 0 {
		t.Errorf("empty RMSE = %v", got)
	}
}

func TestRMSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestNRMSE(t *testing.T) {
	got := NRMSE([]float64{12, 8}, []float64{10, 10})
	if math.Abs(got-0.2) > 1e-12 {
		t.Errorf("NRMSE = %v, want 0.2", got)
	}
	if !math.IsNaN(NRMSE([]float64{1}, []float64{0})) {
		t.Error("zero-mean NRMSE should be NaN")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean != 0")
	}
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Errorf("Mean = %v", Mean([]float64{2, 4, 6}))
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := Pearson(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self-correlation = %v", got)
	}
	neg := []float64{4, 3, 2, 1}
	if got := Pearson(a, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("anti-correlation = %v", got)
	}
	if got := Pearson(a, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("constant correlation = %v", got)
	}
	if got := Pearson(nil, nil); got != 0 {
		t.Errorf("empty correlation = %v", got)
	}
}

func TestPearsonScaleInvariantQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		r1 := Pearson(a, b)
		scaled := make([]float64, n)
		for i := range a {
			scaled[i] = 3*a[i] + 7
		}
		r2 := Pearson(scaled, b)
		return math.Abs(r1-r2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBoxStats(t *testing.T) {
	s := NewBoxStats([]float64{5, 1, 3, 2, 4})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.N != 5 {
		t.Errorf("stats = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles = %v %v", s.Q1, s.Q3)
	}
	if s.Mean != 3 {
		t.Errorf("mean = %v", s.Mean)
	}
	empty := NewBoxStats(nil)
	if empty.N != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
	one := NewBoxStats([]float64{7})
	if one.Min != 7 || one.Max != 7 || one.Median != 7 {
		t.Errorf("singleton stats = %+v", one)
	}
}

func TestBoxStatsDoesNotMutateInput(t *testing.T) {
	v := []float64{3, 1, 2}
	NewBoxStats(v)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Error("input mutated")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 1 + 2x
	slope, intercept, r2 := LinearFit(x, y)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Errorf("fit = %v + %v·x", intercept, slope)
	}
	if math.Abs(r2-1) > 1e-12 {
		t.Errorf("R² = %v", r2)
	}
	// Degenerate inputs.
	if s, _, _ := LinearFit([]float64{1}, []float64{1}); s != 0 {
		t.Error("short input fit nonzero")
	}
	if s, _, r := LinearFit([]float64{2, 2}, []float64{1, 5}); s != 0 || r != 0 {
		t.Error("constant-x fit wrong")
	}
	_, _, r2flat := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if r2flat != 1 {
		t.Errorf("flat-y R² = %v, want 1 (perfectly explained)", r2flat)
	}
}
