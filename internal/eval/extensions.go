package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"geoalign/internal/core"
	"geoalign/internal/raster"
	"geoalign/internal/synth"
)

// ExtensionRow compares GeoAlign with two methods beyond the paper's
// §4 baselines on one dataset: Tobler's pycnophylactic interpolation
// (the classic volume-preserving *intensive* method the paper cites as
// [46]) and the naive source-level regression §3.2 argues against.
type ExtensionRow struct {
	Dataset         string
	GeoAlign        float64
	Pycnophylactic  float64
	NaiveRegression float64
	// RegressionMassError is |Σ estimate − Σ objective| / Σ objective
	// for the naive regression — its broken conservation, quantified.
	RegressionMassError float64
}

// ExtensionReport is the EXT1 experiment output.
type ExtensionReport struct {
	Universe string
	GridSize int
	Rows     []ExtensionRow
}

// ExtensionExperiment runs the intensive-vs-extensive comparison over a
// catalog: every dataset is realigned by GeoAlign (all other datasets
// as references), by the pycnophylactic method (rasterised at
// gridSize×gridSize), and by the naive regression.
func ExtensionExperiment(cat *synth.Catalog, gridSize int) (*ExtensionReport, error) {
	if gridSize <= 0 {
		gridSize = 96
	}
	u := cat.Universe
	g, err := raster.NewGrid(u.Bounds, gridSize, gridSize)
	if err != nil {
		return nil, err
	}
	srcZones := g.Zones(u.Source)
	tgtZones := g.Zones(u.Target)
	// Guard: every source unit must own at least one cell, or the
	// pycnophylactic baseline cannot represent its mass.
	counts := raster.ZoneCellCounts(srcZones, u.Source.Len())
	for z, c := range counts {
		if c == 0 {
			return nil, fmt.Errorf("eval: grid %d too coarse: source unit %d has no cells (use a larger gridSize)", gridSize, z)
		}
	}

	report := &ExtensionReport{Universe: u.Name, GridSize: gridSize}
	for _, test := range cat.Datasets {
		refs := referencesExcluding(cat, test.Name)
		row := ExtensionRow{Dataset: test.Name}

		ga, err := core.Align(core.Problem{Objective: test.Source, References: refs}, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("eval: ext GeoAlign on %q: %w", test.Name, err)
		}
		row.GeoAlign = NRMSE(ga.Target, test.Target)

		py, err := raster.PycnoRealign(g, srcZones, tgtZones, test.Source, u.Target.Len(), raster.PycnoOptions{Iterations: 100})
		if err != nil {
			return nil, fmt.Errorf("eval: pycnophylactic on %q: %w", test.Name, err)
		}
		row.Pycnophylactic = NRMSE(py, test.Target)

		reg, err := core.NaiveRegression(test.Source, refs)
		if err != nil {
			return nil, fmt.Errorf("eval: naive regression on %q: %w", test.Name, err)
		}
		row.NaiveRegression = NRMSE(reg, test.Target)
		var in, out float64
		for _, v := range test.Source {
			in += v
		}
		for _, v := range reg {
			out += v
		}
		if in > 0 {
			row.RegressionMassError = math.Abs(out-in) / in
		}

		report.Rows = append(report.Rows, row)
	}
	sort.Slice(report.Rows, func(i, j int) bool { return report.Rows[i].Dataset < report.Rows[j].Dataset })
	return report, nil
}

// Table renders the EXT1 comparison.
func (r *ExtensionReport) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "EXT1 — GeoAlign vs intensive & regression baselines (%s, %d×%d raster)\n",
		r.Universe, r.GridSize, r.GridSize)
	fmt.Fprintf(&sb, "%-28s %10s %12s %12s %12s\n",
		"dataset", "GeoAlign", "pycno", "naiveReg", "regMassErr")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-28s %10.4f %12.4f %12.4f %11.1f%%\n",
			row.Dataset, row.GeoAlign, row.Pycnophylactic, row.NaiveRegression,
			row.RegressionMassError*100)
	}
	return sb.String()
}

// GeoAlignWinsOver counts datasets where GeoAlign's NRMSE beats the
// named competitor ("pycno" or "regression").
func (r *ExtensionReport) GeoAlignWinsOver(competitor string) (wins, total int) {
	for _, row := range r.Rows {
		var other float64
		switch competitor {
		case "pycno":
			other = row.Pycnophylactic
		case "regression":
			other = row.NaiveRegression
		default:
			continue
		}
		if math.IsNaN(other) || math.IsNaN(row.GeoAlign) {
			continue
		}
		total++
		if row.GeoAlign <= other {
			wins++
		}
	}
	return wins, total
}
