package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"geoalign/internal/core"
	"geoalign/internal/synth"
)

// SelectionSeries names the five Figure 8 experiment series.
var SelectionSeries = []string{
	"leave 1 least related out",
	"leave 2 least related out",
	"leave 1 most related out",
	"leave 2 most related out",
	"using all references",
}

// SelectionRow holds Figure 8's NRMSE values for one test dataset.
type SelectionRow struct {
	Dataset string
	NRMSE   map[string]float64 // series name -> NRMSE
	// MostRelated lists the references by descending source-level
	// correlation with the objective (diagnostic output).
	MostRelated []string
}

// SelectionReport is the Figure 8 experiment output.
type SelectionReport struct {
	Universe string
	Rows     []SelectionRow
}

// SelectionExperiment reruns cross-validation with reference subsets
// chosen by source-level correlation with the test attribute: dropping
// the 1-2 least and 1-2 most correlated references, versus using all.
func SelectionExperiment(cat *synth.Catalog) (*SelectionReport, error) {
	report := &SelectionReport{Universe: cat.Universe.Name}
	for _, test := range cat.Datasets {
		refs := referencesExcluding(cat, test.Name)
		// Order references by |correlation| with the objective at source
		// level, descending.
		type scored struct {
			ref  core.Reference
			corr float64
		}
		ranked := make([]scored, len(refs))
		for k, r := range refs {
			ranked[k] = scored{ref: r, corr: math.Abs(Pearson(refSource(r), test.Source))}
		}
		sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].corr > ranked[j].corr })

		row := SelectionRow{Dataset: test.Name, NRMSE: make(map[string]float64)}
		for _, s := range ranked {
			row.MostRelated = append(row.MostRelated, s.ref.Name)
		}

		run := func(series string, subset []core.Reference) error {
			if len(subset) == 0 {
				row.NRMSE[series] = math.NaN()
				return nil
			}
			res, err := core.Align(core.Problem{Objective: test.Source, References: subset}, core.Options{})
			if err != nil {
				return fmt.Errorf("eval: selection %q on %q: %w", series, test.Name, err)
			}
			row.NRMSE[series] = NRMSE(res.Target, test.Target)
			return nil
		}

		all := make([]core.Reference, len(ranked))
		for k, s := range ranked {
			all[k] = s.ref
		}
		n := len(all)
		if err := run("using all references", all); err != nil {
			return nil, err
		}
		if err := run("leave 1 least related out", all[:maxI(n-1, 0)]); err != nil {
			return nil, err
		}
		if err := run("leave 2 least related out", all[:maxI(n-2, 0)]); err != nil {
			return nil, err
		}
		if err := run("leave 1 most related out", all[minI(1, n):]); err != nil {
			return nil, err
		}
		if err := run("leave 2 most related out", all[minI(2, n):]); err != nil {
			return nil, err
		}
		report.Rows = append(report.Rows, row)
	}
	sort.Slice(report.Rows, func(i, j int) bool { return report.Rows[i].Dataset < report.Rows[j].Dataset })
	return report, nil
}

func refSource(r core.Reference) []float64 {
	if r.Source != nil {
		return r.Source
	}
	return r.DM.RowSums()
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Table renders the Figure 8 series.
func (r *SelectionReport) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 8 — NRMSE by reference subset (%s)\n", r.Universe)
	fmt.Fprintf(&sb, "%-28s %10s %10s %10s %10s %10s\n",
		"dataset", "-1 least", "-2 least", "-1 most", "-2 most", "all")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-28s %10s %10s %10s %10s %10s\n",
			row.Dataset,
			fmtNaN(row.NRMSE["leave 1 least related out"]),
			fmtNaN(row.NRMSE["leave 2 least related out"]),
			fmtNaN(row.NRMSE["leave 1 most related out"]),
			fmtNaN(row.NRMSE["leave 2 most related out"]),
			fmtNaN(row.NRMSE["using all references"]),
		)
	}
	return sb.String()
}
