package eval

import (
	"fmt"
	"math"
	"strings"

	"geoalign/internal/core"
	"geoalign/internal/interval"
	"geoalign/internal/sparse"
	"geoalign/internal/synth"
)

// OneDRow is one held-out dataset's result in the 1-D experiment.
type OneDRow struct {
	Dataset        string
	GeoAlign       float64 // NRMSE
	LengthWeighted float64 // the 1-D analogue of areal weighting
	BestDasymetric float64 // best single-reference redistribution
}

// OneDReport is the TXT2 dimension-independence experiment output: the
// Figure 3 histogram realignment, run with exactly the same algorithm
// code as the 2-D experiments.
type OneDReport struct {
	Rows []OneDRow
}

// OneDExperiment cross-validates a 1-D catalog: every dataset in turn
// is realigned from the narrow to the wide bins using the others as
// references, versus length weighting and the best single reference.
func OneDExperiment(cat *synth.Catalog1D) (*OneDReport, error) {
	lengthDM := lengthCrosswalk(cat.Source, cat.Target)
	report := &OneDReport{}
	for _, test := range cat.Datasets {
		var refs []core.Reference
		for _, d := range cat.Datasets {
			if d.Name != test.Name {
				refs = append(refs, core.Reference{Name: d.Name, Source: d.Source, DM: d.DM})
			}
		}
		res, err := core.Align(core.Problem{Objective: test.Source, References: refs}, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("eval: 1-D GeoAlign on %q: %w", test.Name, err)
		}
		row := OneDRow{Dataset: test.Name, GeoAlign: NRMSE(res.Target, test.Target)}

		lw, err := core.ArealWeighting(test.Source, lengthDM)
		if err != nil {
			return nil, err
		}
		row.LengthWeighted = NRMSE(lw, test.Target)

		row.BestDasymetric = math.Inf(1)
		for _, r := range refs {
			pred, err := core.Dasymetric(test.Source, r)
			if err != nil {
				return nil, err
			}
			if n := NRMSE(pred, test.Target); n < row.BestDasymetric {
				row.BestDasymetric = n
			}
		}
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

// lengthCrosswalk builds the 1-D measure crosswalk (bin overlap
// lengths) with the sparse sweep — no dense |src|×|tgt| matrix.
func lengthCrosswalk(src, tgt *interval.Partition) *sparse.CSR {
	coo := sparse.NewCOO(src.Len(), tgt.Len())
	interval.Overlaps(src, tgt, coo.Add)
	return coo.ToCSR()
}

// Table renders the 1-D experiment.
func (r *OneDReport) Table() string {
	var sb strings.Builder
	sb.WriteString("TXT2 — 1-D histogram realignment (Figure 3 scenario)\n")
	fmt.Fprintf(&sb, "%-22s %10s %12s %12s\n", "dataset", "GeoAlign", "lengthWt", "bestDasym")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-22s %10.4f %12.4f %12.4f\n",
			row.Dataset, row.GeoAlign, row.LengthWeighted, row.BestDasymetric)
	}
	return sb.String()
}
