package cliflag

import (
	"flag"
	"io"
	"testing"
)

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"", 0, false},
		{"   ", 0, false},
		{"0", 0, false},
		{"1048576", 1 << 20, false},
		{"64KB", 64 << 10, false},
		{"64KiB", 64 << 10, false},
		{"64k", 64 << 10, false},
		{"512MiB", 512 << 20, false},
		{"512M", 512 << 20, false},
		{"2G", 2 << 30, false},
		{"2GiB", 2 << 30, false},
		{" 2 GiB not", 0, true},
		{"-1", 0, true},
		{"1.5G", 0, true},
		{"xyz", 0, true},
		{"8589934592G", 0, true}, // overflows int64 after the shift
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseBytes(%q) = %d, want error", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
}

func TestRepeated(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var r Repeated
	fs.Var(&r, "x", "")
	if err := fs.Parse([]string{"-x", "a", "-x", "b=c"}); err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 || r[0] != "a" || r[1] != "b=c" {
		t.Fatalf("Repeated = %v", r)
	}
	if r.String() != "a,b=c" {
		t.Fatalf("String = %q", r.String())
	}
}
