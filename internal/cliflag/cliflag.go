// Package cliflag holds the small flag-parsing helpers the geoalign
// binaries share: human-readable byte sizes and repeatable string
// flags. Extracted so geoalign, geoalignd and geoalignrouter parse
// identical syntax instead of drifting copies.
package cliflag

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseBytes parses a human-readable byte size: a plain integer, or an
// integer with a K/M/G suffix (optionally followed by B or iB), binary
// multiples in all cases. Empty (and all-whitespace) input means 0.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, nil
	}
	upper := strings.ToUpper(t)
	shift := 0
	for suf, sh := range map[string]int{"K": 10, "M": 20, "G": 30} {
		for _, full := range []string{suf + "IB", suf + "B", suf} {
			if strings.HasSuffix(upper, full) {
				upper = strings.TrimSuffix(upper, full)
				shift = sh
				break
			}
		}
		if shift != 0 {
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(upper), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte size %q (want e.g. 512MiB, 2GiB, 1048576)", s)
	}
	if shift > 0 && n > (1<<62)>>shift {
		return 0, fmt.Errorf("byte size %q overflows", s)
	}
	return n << shift, nil
}

// Repeated is a flag.Value collecting every occurrence of a repeatable
// string flag, in order.
type Repeated []string

// String renders the collected values; flag.Value.
func (r *Repeated) String() string { return strings.Join(*r, ",") }

// Set appends one occurrence; flag.Value.
func (r *Repeated) Set(v string) error { *r = append(*r, v); return nil }
