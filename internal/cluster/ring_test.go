package cluster

import (
	"fmt"
	"math"
	"testing"
)

func keysFor(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("engine-%04d", i)
	}
	return keys
}

func TestRingDeterministicAndComplete(t *testing.T) {
	r := NewRing(0, 0)
	r.SetNodes([]string{"b", "a", "c", "a"}) // dup + unsorted input
	if got := r.Nodes(); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("Nodes = %v", got)
	}
	for _, k := range keysFor(100) {
		o1, ok1 := r.Owner(k)
		o2, ok2 := r.Owner(k)
		if !ok1 || !ok2 || o1 != o2 {
			t.Fatalf("Owner(%q) unstable: %q/%v vs %q/%v", k, o1, ok1, o2, ok2)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(16, DefaultLoadFactor)
	if _, ok := r.Owner("x"); ok {
		t.Fatal("empty ring produced an owner")
	}
	r.SetNodes([]string{"only"})
	if o, ok := r.Owner("x"); !ok || o != "only" {
		t.Fatalf("single-node Owner = %q/%v", o, ok)
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(DefaultVNodes, 0)
	nodes := []string{"r0", "r1", "r2", "r3"}
	r.SetNodes(nodes)
	counts := map[string]int{}
	keys := keysFor(4000)
	for _, k := range keys {
		o, _ := r.Owner(k)
		counts[o]++
	}
	want := float64(len(keys)) / float64(len(nodes))
	for _, n := range nodes {
		if dev := math.Abs(float64(counts[n])-want) / want; dev > 0.35 {
			t.Errorf("node %s owns %d keys, want ~%.0f (dev %.2f)", n, counts[n], want, dev)
		}
	}
}

func TestRingMinimalDisruption(t *testing.T) {
	// Removing one of four replicas must move only the removed node's
	// keys; every surviving assignment stays put.
	r := NewRing(DefaultVNodes, 0)
	r.SetNodes([]string{"r0", "r1", "r2", "r3"})
	keys := keysFor(2000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}
	r.SetNodes([]string{"r0", "r1", "r3"})
	moved := 0
	for _, k := range keys {
		after, ok := r.Owner(k)
		if !ok {
			t.Fatalf("no owner for %q after removal", k)
		}
		if after == "r2" {
			t.Fatalf("key %q still assigned to removed replica", k)
		}
		if before[k] != "r2" && after != before[k] {
			t.Errorf("key %q moved %s -> %s though its owner survived", k, before[k], after)
		}
		if before[k] == "r2" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("removed replica owned no keys; balance test is vacuous")
	}
}

func TestRingBoundedLoadSpill(t *testing.T) {
	r := NewRing(DefaultVNodes, DefaultLoadFactor)
	r.SetNodes([]string{"r0", "r1"})

	key := "hot-engine"
	primary, _ := r.Owner(key)
	other := "r0"
	if primary == "r0" {
		other = "r1"
	}

	// Unloaded: primary owns.
	if o, _ := r.Owner(key); o != primary {
		t.Fatalf("unloaded Owner = %s, want %s", o, primary)
	}

	// Light, balanced load must not spill: one in-flight request on the
	// primary with bound ceil(1.25*(1+1)/2)=2 still admits it.
	rel := r.Acquire(primary)
	if o, _ := r.Owner(key); o != primary {
		t.Fatalf("lightly loaded Owner = %s, want primary %s", o, primary)
	}
	rel()

	// Pile in-flight load on the primary only; the bound trips and the
	// key spills to the other replica.
	var rels []func()
	for i := 0; i < 16; i++ {
		rels = append(rels, r.Acquire(primary))
	}
	if o, _ := r.Owner(key); o != other {
		t.Fatalf("overloaded Owner = %s, want spill to %s", o, other)
	}
	for _, f := range rels {
		f()
	}
	// Load released: back to the primary.
	if o, _ := r.Owner(key); o != primary {
		t.Fatalf("post-release Owner = %s, want %s", o, primary)
	}
}

func TestRingAcquireCarriesAcrossSetNodes(t *testing.T) {
	r := NewRing(16, DefaultLoadFactor)
	r.SetNodes([]string{"a", "b"})
	rel := r.Acquire("a")
	r.SetNodes([]string{"a", "b", "c"})
	if got := r.Inflight("a"); got != 1 {
		t.Fatalf("Inflight(a) after rebuild = %d, want 1", got)
	}
	rel()
	rel() // double release must not underflow
	if got := r.Inflight("a"); got != 0 {
		t.Fatalf("Inflight(a) after release = %d, want 0", got)
	}
	if rel := r.Acquire("ghost"); rel == nil {
		t.Fatal("Acquire(unknown) returned nil")
	}
}

func TestOwnerSuccessors(t *testing.T) {
	r := NewRing(32, 0)
	r.SetNodes([]string{"a", "b", "c"})
	succ := r.OwnerSuccessors("some-engine", 5)
	if len(succ) != 3 {
		t.Fatalf("successors = %v, want all 3 distinct", succ)
	}
	seen := map[string]bool{}
	for _, s := range succ {
		if seen[s] {
			t.Fatalf("duplicate successor in %v", succ)
		}
		seen[s] = true
	}
	primary, _ := r.Owner("some-engine")
	if succ[0] != primary {
		t.Fatalf("successors[0] = %s, want primary %s", succ[0], primary)
	}
}
