package cluster_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"geoalign"
	"geoalign/internal/cluster"
	"geoalign/internal/cluster/blobstore"
	"geoalign/internal/serve"
)

// usOnce builds the paper's US-scale engine (30238 ZCTA-like sources,
// 3142 county-like targets, 7 references) once; construction is never
// what these benchmarks measure.
var (
	usOnce    sync.Once
	usAligner *geoalign.Aligner
)

func usEngine(b *testing.B) *geoalign.Aligner {
	b.Helper()
	usOnce.Do(func() { usAligner = buildAligner(b, 9, 30238, 3142, 7) })
	return usAligner
}

// binaryObjective encodes an objective for the binary align codec
// (little-endian float64s).
func binaryObjective(rng *rand.Rand, n int) []byte {
	buf := make([]byte, 8*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(rng.Float64()*1e4))
	}
	return buf
}

const contentTypeBinary = "application/octet-stream"

// BenchmarkRouterOverhead prices the router's data-plane tax: the same
// binary-codec align against the US-scale engine, hit directly on the
// replica versus through the consistent-hash router. The routed and
// direct ns/op differ by the router's full cost — body buffering, ring
// lookup, proxied hop on a pooled keep-alive connection, response
// passthrough. The acceptance bar is <= 150us of added p50 latency.
func BenchmarkRouterOverhead(b *testing.B) {
	al := usEngine(b)
	reg := serve.NewRegistry()
	if err := reg.Register("us", al); err != nil {
		b.Fatal(err)
	}
	srv := serve.NewServer(reg, serve.Config{})
	replica := httptest.NewServer(srv.Handler())
	defer func() { replica.Close(); srv.Shutdown() }()

	rt, err := cluster.NewRouter(cluster.RouterConfig{Replicas: []string{replica.URL}})
	if err != nil {
		b.Fatal(err)
	}
	routerTS := httptest.NewServer(rt.Handler())
	defer func() { routerTS.Close(); rt.Close() }()

	payload := binaryObjective(rand.New(rand.NewSource(99)), al.SourceUnits())
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
	post := func(b *testing.B, base string) {
		resp, err := client.Post(base+"/v1/align?engine=us", contentTypeBinary, bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	bench := func(base string) func(*testing.B) {
		return func(b *testing.B) {
			post(b, base) // unmeasured warm-up: connections + scratch pools
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				post(b, base)
			}
		}
	}
	b.Run("direct", bench(replica.URL))
	b.Run("routed", bench(routerTS.URL))
}

// replicaCapacity models one replica machine's serving capacity so
// scale-out is measurable on a single-core CI box: each replica admits
// one align at a time (a one-core machine) and each align costs a
// fixed ~500us of modeled solve time on that machine's clock, timed by
// the scheduler rather than burning the shared host CPU. With real
// in-process replicas on one host core, N "replicas" would still share
// one CPU and throughput could never scale; with modeled per-replica
// clocks, a 32-request wave costs ~32 service times on one replica and
// ~16 on two, exactly the fleet arithmetic the router exists to buy.
func replicaCapacity(next http.Handler, serviceTime time.Duration) http.Handler {
	slot := make(chan struct{}, 1)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		slot <- struct{}{}
		time.Sleep(serviceTime)
		<-slot
		next.ServeHTTP(w, r)
	})
}

// BenchmarkClusterServe measures wave throughput scale-out: 32
// concurrent clients spread across 8 engines, served by 1 or 2
// capacity-modeled replicas behind the router. One op is one wave
// (all 32 responses in), so ns/op is wave wall time; the acceptance
// bar is 2-replica throughput >= 1.8x single-node.
func BenchmarkClusterServe(b *testing.B) {
	b.Run("replicas=1", func(b *testing.B) { benchClusterServe(b, 1, clusterServiceTime) })
	b.Run("replicas=2", func(b *testing.B) { benchClusterServe(b, 2, clusterServiceTime) })
}

// clusterServiceTime is the modeled per-align machine cost: roughly
// one warm US-scale coalesced wave's per-request share on a production
// core, and large enough to dominate the fixture's fixed per-wave HTTP
// cost (~6ms on one host core) so the measured ratio reflects fleet
// capacity, not harness overhead.
const clusterServiceTime = 5 * time.Millisecond

func benchClusterServe(b *testing.B, replicas int, serviceTime time.Duration) {
	const (
		clients     = 32
		engineCount = 8
	)
	al := buildAligner(b, 17, 64, 8, 2)
	payload := binaryObjective(rand.New(rand.NewSource(4)), 64)

	{
		urls := make([]string, replicas)
		regs := make([]*serve.Registry, replicas)
		for i := 0; i < replicas; i++ {
			regs[i] = serve.NewRegistry()
			srv := serve.NewServer(regs[i], serve.Config{})
			ts := httptest.NewServer(replicaCapacity(srv.Handler(), serviceTime))
			defer func() { ts.Close(); srv.Shutdown() }()
			urls[i] = ts.URL
		}
		rt, err := cluster.NewRouter(cluster.RouterConfig{Replicas: urls})
		if err != nil {
			b.Fatal(err)
		}
		routerTS := httptest.NewServer(rt.Handler())
		defer func() { routerTS.Close(); rt.Close() }()

		// Engine names are probed against the ring so ownership splits
		// evenly across replicas — the balanced placement a fleet
		// operator (or the ring itself, at realistic engine counts)
		// provides. Every replica registers every engine (the fleet's
		// all-replicas-warm model), so failover and spill stay valid.
		names := make([]string, 0, engineCount)
		perOwner := map[string]int{}
		for i := 0; len(names) < engineCount; i++ {
			n := fmt.Sprintf("shard-%d", i)
			owner, ok := rt.Ring().Owner(n)
			if !ok {
				b.Fatal("ring empty")
			}
			if perOwner[owner] >= engineCount/replicas {
				continue
			}
			perOwner[owner]++
			names = append(names, n)
		}
		for _, reg := range regs {
			for _, n := range names {
				if err := reg.Register(n, al); err != nil {
					b.Fatal(err)
				}
			}
		}

		client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients * 2}}
		post := func(c int) {
			url := routerTS.URL + "/v1/align?engine=" + names[c%engineCount]
			resp, err := client.Post(url, contentTypeBinary, bytes.NewReader(payload))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
			}
		}
		var wg sync.WaitGroup
		wave := func() {
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) { defer wg.Done(); post(c) }(c)
			}
			wg.Wait()
		}
		wave() // unmeasured warm-up
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wave()
		}
	}
}

// BenchmarkClusterWarmup prices a replica joining the fleet: per op,
// resolve one US-scale engine from a locally cached blob (the common
// scale-out path — digest already pulled or baked into the image),
// mmap the snapshot, and publish it into the registry. This is the
// ~5ms path that replaces the ~343ms from-scratch build; the
// acceptance bar is <= 10ms per engine.
func BenchmarkClusterWarmup(b *testing.B) {
	al := usEngine(b)
	dir := b.TempDir()
	store, err := blobstore.Open(filepath.Join(dir, "blobs"))
	if err != nil {
		b.Fatal(err)
	}
	al.PrecomputeSolverCaches()
	snap := filepath.Join(dir, "us.snap")
	if err := al.WriteSnapshot(snap, &geoalign.SnapshotMeta{}); err != nil {
		b.Fatal(err)
	}
	digest, _, err := store.PutFile(snap)
	if err != nil {
		b.Fatal(err)
	}

	reg := serve.NewRegistry()
	fetcher := &blobstore.Fetcher{Store: store}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fetcher.Ensure(context.Background(), digest); err != nil {
			b.Fatal(err)
		}
		path, err := store.Path(digest)
		if err != nil {
			b.Fatal(err)
		}
		mapped, _, err := geoalign.OpenSnapshot(path, &geoalign.AlignerOptions{DiscardCrosswalks: true})
		if err != nil {
			b.Fatal(err)
		}
		reg.SwapOwned("us", mapped, 0)
	}
}
