package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"geoalign/internal/cluster/blobstore"
)

// This file holds the router's fleet-wide control-plane endpoints:
// aggregated engine listing, manifest read/broadcast, cluster health,
// and router metrics. The data plane (align/batch/delta proxying)
// lives in router.go.

// fanOut runs fn against every healthy replica concurrently and
// returns the per-replica results keyed by replica ID.
func (rt *Router) fanOut(ctx context.Context, fn func(ctx context.Context, id string) (any, error)) map[string]fanResult {
	rt.mu.Lock()
	ids := make([]string, 0, len(rt.replicas))
	for id, st := range rt.replicas {
		if st.healthy {
			ids = append(ids, id)
		}
	}
	rt.mu.Unlock()

	out := make(map[string]fanResult, len(ids))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			v, err := fn(ctx, id)
			mu.Lock()
			out[id] = fanResult{Value: v, Err: err}
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	return out
}

type fanResult struct {
	Value any
	Err   error
}

// getJSON fetches one replica endpoint into out.
func (rt *Router) getJSON(ctx context.Context, id, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, id+path, nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// handleEngines aggregates every healthy replica's /v1/engines view
// into one cluster-wide listing: engine entries annotated with the
// replica that reported them and the engine's current ring owner.
func (rt *Router) handleEngines(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	results := rt.fanOut(ctx, func(ctx context.Context, id string) (any, error) {
		var body struct {
			Engines []map[string]any `json:"engines"`
		}
		if err := rt.getJSON(ctx, id, "/v1/engines", &body); err != nil {
			return nil, err
		}
		return body.Engines, nil
	})

	var engines []map[string]any
	errs := map[string]string{}
	for id, res := range results {
		if res.Err != nil {
			errs[id] = res.Err.Error()
			continue
		}
		for _, e := range res.Value.([]map[string]any) {
			e["replica"] = id
			if name, _ := e["name"].(string); name != "" {
				if owner, ok := rt.ring.Owner(name); ok {
					e["shard_owner"] = owner
				}
			}
			engines = append(engines, e)
		}
	}
	sort.Slice(engines, func(i, j int) bool {
		ni, _ := engines[i]["name"].(string)
		nj, _ := engines[j]["name"].(string)
		if ni != nj {
			return ni < nj
		}
		ri, _ := engines[i]["replica"].(string)
		rj, _ := engines[j]["replica"].(string)
		return ri < rj
	})
	out := map[string]any{"engines": engines}
	if len(errs) > 0 {
		out["replica_errors"] = errs
	}
	writeJSON(w, http.StatusOK, out)
}

// handleManifestGet returns the fleet's converged manifest: the union
// of replica manifests, taking the highest generation per engine, with
// any cross-replica digest disagreement surfaced explicitly so a
// half-rolled-out fleet is visible rather than papered over.
func (rt *Router) handleManifestGet(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	results := rt.fanOut(ctx, func(ctx context.Context, id string) (any, error) {
		var m blobstore.Manifest
		if err := rt.getJSON(ctx, id, "/v1/cluster/manifest", &m); err != nil {
			return nil, err
		}
		return m, nil
	})

	merged := map[string]blobstore.ManifestEntry{}
	digests := map[string]map[string]bool{} // engine -> digest set
	errs := map[string]string{}
	for id, res := range results {
		if res.Err != nil {
			errs[id] = res.Err.Error()
			continue
		}
		for name, e := range res.Value.(blobstore.Manifest).Engines {
			if cur, ok := merged[name]; !ok || e.Generation > cur.Generation {
				merged[name] = e
			}
			if digests[name] == nil {
				digests[name] = map[string]bool{}
			}
			digests[name][e.Digest] = true
		}
	}
	var diverged []string
	for name, set := range digests {
		if len(set) > 1 {
			diverged = append(diverged, name)
		}
	}
	sort.Strings(diverged)
	out := map[string]any{"engines": merged}
	if len(diverged) > 0 {
		out["diverged"] = diverged
	}
	if len(errs) > 0 {
		out["replica_errors"] = errs
	}
	writeJSON(w, http.StatusOK, out)
}

// handleManifestBroadcast forwards a manifest apply to every healthy
// replica, fanning the same body out in parallel. This is the
// fleet-wide rollout primitive: publish a snapshot to the blob store,
// POST the new manifest here once, and every replica pulls the digest
// and hot-swaps behind its generational registry with zero downtime.
// Responds 200 only when every replica converged; 502 otherwise, with
// per-replica detail either way.
func (rt *Router) handleManifestBroadcast(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Minute)
	defer cancel()
	results := rt.fanOut(ctx, func(ctx context.Context, id string) (any, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, id+"/v1/cluster/manifest", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := rt.client.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		var detail json.RawMessage
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<22)).Decode(&detail); err != nil {
			detail = nil
		}
		if resp.StatusCode != http.StatusOK {
			return detail, fmt.Errorf("manifest apply: %s", resp.Status)
		}
		return detail, nil
	})

	status := http.StatusOK
	replicas := make(map[string]any, len(results))
	for id, res := range results {
		entry := map[string]any{}
		if res.Value != nil {
			entry["result"] = res.Value
		}
		if res.Err != nil {
			entry["error"] = res.Err.Error()
			status = http.StatusBadGateway
		}
		replicas[id] = entry
	}
	if len(results) == 0 {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"replicas": replicas})
}

// handleHealth reports the router's cluster view: per-replica health,
// probe state, and ring membership. Status is "ok" while at least one
// replica is in the ring, "degraded" when some are ejected, and the
// response is 503 "down" when none are serviceable.
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	type replicaView struct {
		ID            string  `json:"id"`
		Healthy       bool    `json:"healthy"`
		ConsecFails   int     `json:"consecutive_failures,omitempty"`
		LastError     string  `json:"last_error,omitempty"`
		LastProbeMS   float64 `json:"last_probe_ms,omitempty"`
		Engines       int64   `json:"engines"`
		Proxied       int64   `json:"proxied"`
		ProxyErrors   int64   `json:"proxy_errors,omitempty"`
		RingInflight  int64   `json:"ring_inflight"`
		LastProbeUnix int64   `json:"last_probe_unix,omitempty"`
	}
	views := make([]replicaView, 0, len(rt.replicas))
	healthy := 0
	for _, st := range rt.replicas {
		v := replicaView{
			ID:           st.id,
			Healthy:      st.healthy,
			ConsecFails:  st.consecFails,
			LastError:    st.lastErr,
			LastProbeMS:  st.probeMillis,
			Engines:      st.engineCount,
			Proxied:      st.proxied.Load(),
			ProxyErrors:  st.proxyErrors.Load(),
			RingInflight: rt.ring.Inflight(st.id),
		}
		if !st.lastProbe.IsZero() {
			v.LastProbeUnix = st.lastProbe.Unix()
		}
		views = append(views, v)
		if st.healthy {
			healthy++
		}
	}
	total := len(rt.replicas)
	rt.mu.Unlock()
	sort.Slice(views, func(i, j int) bool { return views[i].ID < views[j].ID })

	status, code := "ok", http.StatusOK
	switch {
	case healthy == 0:
		status, code = "down", http.StatusServiceUnavailable
	case healthy < total:
		status = "degraded"
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"replicas": views,
		"ring":     rt.ring.Describe(),
	})
}

// handleMetrics reports the router's own counters.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := &rt.metrics
	writeJSON(w, http.StatusOK, map[string]any{
		"requests":     m.requests.Load(),
		"proxied":      m.proxied.Load(),
		"retries":      m.retries.Load(),
		"shed":         m.shed.Load(),
		"no_replica":   m.noReplica.Load(),
		"proxy_errors": m.proxyErrors.Load(),
		"probes":       m.probes.Load(),
		"ejections":    m.ejections.Load(),
		"readmits":     m.readmits.Load(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
