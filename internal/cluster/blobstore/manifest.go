package blobstore

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"geoalign/internal/snapshot"
)

// Manifest names the engine fleet: which snapshot digest serves each
// engine, and the generation the publisher had reached when it was
// cut. It is the only mutable piece of cluster state — blobs are
// immutable and replicas converge on whatever the manifest says by
// pulling missing digests and hot-swapping engines whose digest
// changed.
type Manifest struct {
	// Engines maps engine name to its snapshot assignment.
	Engines map[string]ManifestEntry `json:"engines"`
}

// ManifestEntry is one engine's assignment.
type ManifestEntry struct {
	// Digest is the content address of the .snap blob serving the
	// engine.
	Digest string `json:"digest"`
	// Generation is the publisher's registry generation for the engine
	// when the manifest was cut; informational (each replica numbers
	// its own generations), but lets operators correlate fleet state.
	Generation int `json:"generation,omitempty"`
}

// Validate checks every digest parses, returning a canonicalised copy.
func (m *Manifest) Validate() (*Manifest, error) {
	out := &Manifest{Engines: make(map[string]ManifestEntry, len(m.Engines))}
	for name, e := range m.Engines {
		if name == "" {
			return nil, fmt.Errorf("blobstore: manifest entry with empty engine name")
		}
		d, err := snapshot.ParseDigest(e.Digest)
		if err != nil {
			return nil, fmt.Errorf("blobstore: manifest engine %q: %w", name, err)
		}
		e.Digest = d
		out.Engines[name] = e
	}
	return out, nil
}

// Names returns the manifest's engine names, sorted.
func (m *Manifest) Names() []string {
	names := make([]string, 0, len(m.Engines))
	for n := range m.Engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Digests returns the set of digests the manifest references — the
// keep-set for GC.
func (m *Manifest) Digests() map[string]bool {
	out := make(map[string]bool, len(m.Engines))
	for _, e := range m.Engines {
		out[e.Digest] = true
	}
	return out
}

// ReadManifest loads and validates a manifest JSON file.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeManifest(b)
}

// DecodeManifest parses and validates manifest JSON bytes.
func DecodeManifest(b []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("blobstore: decoding manifest: %w", err)
	}
	return m.Validate()
}

// WriteManifest persists a manifest as deterministic, human-diffable
// JSON (sorted keys, indented) via temp+rename.
func WriteManifest(path string, m *Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
