// Package blobstore is the content-addressed snapshot store behind
// GeoAlign's fleet serving: engine snapshots (.snap files) are
// published under their SHA-256 digest, replicas pull blobs they are
// missing over HTTP (or find them already present when the store
// directory is shared), and a manifest names which digest serves each
// engine. Content addressing is what makes distribution boring — a
// blob is immutable once published, so fetches are idempotent,
// caching needs no invalidation, and the only coordination surface is
// the tiny manifest.
//
// On-disk layout: one file per blob, named "sha256-<hex>.snap" inside
// the store directory. Publication is atomic (temp file in the same
// directory, fsync, rename), so a crashed writer never leaves a
// half-blob under a valid name and concurrent publishers of the same
// digest converge on identical bytes.
package blobstore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"geoalign/internal/snapshot"
)

// ErrUnknownBlob is returned for digests the store does not hold.
var ErrUnknownBlob = errors.New("blobstore: unknown blob")

// blobExt is the filename extension blobs are stored under.
const blobExt = ".snap"

// Store is a directory of content-addressed blobs. Methods are safe
// for concurrent use by multiple goroutines and multiple processes
// sharing the directory (publication is rename-atomic and blobs are
// immutable).
type Store struct {
	dir string
}

// Open returns a store over dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("blobstore: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blobstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// fileName maps a validated digest to its blob file name.
func fileName(digest string) string {
	return "sha256-" + digest[len(snapshot.DigestPrefix):] + blobExt
}

// digestOfFile inverts fileName; ok is false for foreign files.
func digestOfFile(name string) (string, bool) {
	hexPart, found := strings.CutPrefix(name, "sha256-")
	if !found {
		return "", false
	}
	hexPart, found = strings.CutSuffix(hexPart, blobExt)
	if !found {
		return "", false
	}
	d, err := snapshot.ParseDigest(snapshot.DigestPrefix + hexPart)
	if err != nil {
		return "", false
	}
	return d, true
}

// Path returns the on-disk path a digest resolves to, whether or not
// the blob is present. The digest is validated so a hostile digest can
// never escape the store directory.
func (s *Store) Path(digest string) (string, error) {
	d, err := snapshot.ParseDigest(digest)
	if err != nil {
		return "", err
	}
	return filepath.Join(s.dir, fileName(d)), nil
}

// Has reports whether the store holds the blob.
func (s *Store) Has(digest string) bool {
	p, err := s.Path(digest)
	if err != nil {
		return false
	}
	st, err := os.Stat(p)
	return err == nil && st.Mode().IsRegular()
}

// Stat returns the size of a held blob.
func (s *Store) Stat(digest string) (int64, error) {
	p, err := s.Path(digest)
	if err != nil {
		return 0, err
	}
	st, err := os.Stat(p)
	if err != nil {
		return 0, fmt.Errorf("%w: %s", ErrUnknownBlob, digest)
	}
	return st.Size(), nil
}

// Put publishes the bytes streamed from r and returns their digest.
// The digest is computed while writing; publication is atomic. Putting
// bytes already present is a no-op that still reports their digest.
func (s *Store) Put(r io.Reader) (digest string, size int64, err error) {
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return "", 0, fmt.Errorf("blobstore: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	h := snapshot.NewDigester()
	size, err = io.Copy(io.MultiWriter(tmp, h), r)
	if err != nil {
		return "", 0, fmt.Errorf("blobstore: %w", err)
	}
	digest = snapshot.FormatDigest(h)
	return digest, size, s.seal(&tmp, digest)
}

// PutExpected is Put for callers that already know the digest they are
// publishing (a manifest fetch): the incoming bytes are verified
// against it and rejected on mismatch, so a corrupt or hostile origin
// can never populate the store under a clean name.
func (s *Store) PutExpected(r io.Reader, want string) (size int64, err error) {
	want, err = snapshot.ParseDigest(want)
	if err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return 0, fmt.Errorf("blobstore: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	h := snapshot.NewDigester()
	size, err = io.Copy(io.MultiWriter(tmp, h), r)
	if err != nil {
		return 0, fmt.Errorf("blobstore: %w", err)
	}
	if got := snapshot.FormatDigest(h); got != want {
		return 0, fmt.Errorf("blobstore: fetched bytes digest %s, want %s", got, want)
	}
	return size, s.seal(&tmp, want)
}

// PutFile publishes an existing file (an engine snapshot just written
// next to the store) and returns its digest.
func (s *Store) PutFile(path string) (digest string, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	return s.Put(f)
}

// seal fsyncs and renames a temp file into its content address. On
// success it takes ownership of (and nils) *tmp.
func (s *Store) seal(tmp **os.File, digest string) error {
	f := *tmp
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(f.Name())
		*tmp = nil
		return fmt.Errorf("blobstore: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		*tmp = nil
		return fmt.Errorf("blobstore: %w", err)
	}
	dst := filepath.Join(s.dir, fileName(digest))
	if err := os.Rename(f.Name(), dst); err != nil {
		os.Remove(f.Name())
		*tmp = nil
		return fmt.Errorf("blobstore: %w", err)
	}
	*tmp = nil
	return nil
}

// Open returns a reader over a held blob. The caller closes it.
func (s *Store) Open(digest string) (*os.File, error) {
	p, err := s.Path(digest)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrUnknownBlob, digest)
		}
		return nil, err
	}
	return f, nil
}

// Remove deletes a held blob. Removing an absent blob is an error.
func (s *Store) Remove(digest string) error {
	p, err := s.Path(digest)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("%w: %s", ErrUnknownBlob, digest)
		}
		return err
	}
	return nil
}

// BlobInfo describes one held blob.
type BlobInfo struct {
	Digest string `json:"digest"`
	Size   int64  `json:"size"`
}

// List enumerates held blobs, sorted by digest. Foreign files in the
// directory (including in-flight .put- temp files) are ignored.
func (s *Store) List() ([]BlobInfo, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("blobstore: %w", err)
	}
	var out []BlobInfo
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		d, ok := digestOfFile(e.Name())
		if !ok {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue // raced with a concurrent Remove
		}
		out = append(out, BlobInfo{Digest: d, Size: fi.Size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out, nil
}

// GC removes every held blob whose digest is not in keep, returning
// what was (or, with dryRun, would be) removed. Blobs that vanish
// between listing and removal are treated as already collected.
func (s *Store) GC(keep map[string]bool, dryRun bool) ([]BlobInfo, error) {
	blobs, err := s.List()
	if err != nil {
		return nil, err
	}
	var swept []BlobInfo
	for _, b := range blobs {
		if keep[b.Digest] {
			continue
		}
		if !dryRun {
			if err := s.Remove(b.Digest); err != nil && !errors.Is(err, ErrUnknownBlob) {
				return swept, err
			}
		}
		swept = append(swept, b)
	}
	return swept, nil
}
