package blobstore

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geoalign/internal/snapshot"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutRoundTrip(t *testing.T) {
	s := newStore(t)
	data := []byte("snapshot payload bytes")
	want := snapshot.Digest(data)

	digest, size, err := s.Put(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if digest != want || size != int64(len(data)) {
		t.Fatalf("Put = %s/%d, want %s/%d", digest, size, want, len(data))
	}
	if !s.Has(digest) {
		t.Fatal("Has after Put = false")
	}
	if n, err := s.Stat(digest); err != nil || n != int64(len(data)) {
		t.Fatalf("Stat = %d, %v", n, err)
	}

	f, err := s.Open(digest)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(f)
	f.Close()
	if !bytes.Equal(got, data) {
		t.Fatalf("Open read back %q, want %q", got, data)
	}

	// Re-putting identical content is a no-op with the same address.
	d2, _, err := s.Put(bytes.NewReader(data))
	if err != nil || d2 != digest {
		t.Fatalf("second Put = %s, %v", d2, err)
	}

	// No temp files linger.
	entries, _ := os.ReadDir(s.Dir())
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".put-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestPutExpectedRejectsMismatch(t *testing.T) {
	s := newStore(t)
	want := snapshot.Digest([]byte("the real bytes"))
	if _, err := s.PutExpected(bytes.NewReader([]byte("tampered bytes")), want); err == nil {
		t.Fatal("PutExpected accepted mismatched content")
	}
	if s.Has(want) {
		t.Fatal("mismatched content published under the expected digest")
	}
	if blobs, _ := s.List(); len(blobs) != 0 {
		t.Fatalf("store not empty after rejected put: %v", blobs)
	}
}

func TestPathRejectsHostileDigest(t *testing.T) {
	s := newStore(t)
	for _, d := range []string{
		"sha256:../../etc/passwd",
		"sha256:" + strings.Repeat("zz", 32),
		"../escape",
		"",
	} {
		if _, err := s.Path(d); err == nil {
			t.Errorf("Path(%q) accepted", d)
		}
	}
}

func TestListAndGC(t *testing.T) {
	s := newStore(t)
	var digests []string
	for _, payload := range []string{"blob a", "blob b", "blob c"} {
		d, _, err := s.Put(strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}
	// A foreign file must be invisible to List and GC.
	if err := os.WriteFile(filepath.Join(s.Dir(), "notes.txt"), []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}

	blobs, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 3 {
		t.Fatalf("List = %d blobs, want 3", len(blobs))
	}

	keep := map[string]bool{digests[0]: true}

	// Dry run reports without removing.
	swept, err := s.GC(keep, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != 2 {
		t.Fatalf("dry-run GC swept %d, want 2", len(swept))
	}
	for _, d := range digests {
		if !s.Has(d) {
			t.Fatalf("dry-run GC removed %s", d)
		}
	}

	// Real run removes exactly the unreferenced blobs.
	swept, err = s.GC(keep, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != 2 {
		t.Fatalf("GC swept %d, want 2", len(swept))
	}
	if !s.Has(digests[0]) || s.Has(digests[1]) || s.Has(digests[2]) {
		t.Fatal("GC removed the wrong blobs")
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), "notes.txt")); err != nil {
		t.Fatal("GC touched a foreign file")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	d := snapshot.Digest([]byte("engine"))
	m := &Manifest{Engines: map[string]ManifestEntry{
		"zip2county": {Digest: d, Generation: 3},
		"demo":       {Digest: d},
	}}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Engines) != 2 || got.Engines["zip2county"].Digest != d || got.Engines["zip2county"].Generation != 3 {
		t.Fatalf("round trip = %+v", got)
	}
	if names := got.Names(); len(names) != 2 || names[0] != "demo" || names[1] != "zip2county" {
		t.Fatalf("Names = %v", names)
	}
	if !got.Digests()[d] {
		t.Fatal("Digests missing the referenced digest")
	}

	if _, err := DecodeManifest([]byte(`{"engines":{"x":{"digest":"bogus"}}}`)); err == nil {
		t.Fatal("DecodeManifest accepted a bogus digest")
	}
	if _, err := DecodeManifest([]byte(`{"engines":{"":{"digest":"` + d + `"}}}`)); err == nil {
		t.Fatal("DecodeManifest accepted an empty engine name")
	}
}

func TestServeBlobAndFetcher(t *testing.T) {
	origin := newStore(t)
	data := bytes.Repeat([]byte("snapshot section bytes "), 1000)
	digest, _, err := origin.Put(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET "+BlobPathPrefix+"{digest}", func(w http.ResponseWriter, r *http.Request) {
		origin.ServeBlob(w, r, r.PathValue("digest"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	local := newStore(t)
	f := &Fetcher{Store: local, Origins: []string{"http://127.0.0.1:1", ts.URL}}

	fetched, _, err := f.Ensure(context.Background(), digest)
	if err != nil {
		t.Fatal(err)
	}
	if !fetched {
		t.Fatal("Ensure reported cached for an absent blob")
	}
	if !local.Has(digest) {
		t.Fatal("blob not in local store after Ensure")
	}
	rd, _ := local.Open(digest)
	got, _ := io.ReadAll(rd)
	rd.Close()
	if !bytes.Equal(got, data) {
		t.Fatal("fetched bytes differ from origin")
	}

	// Second Ensure is the cached path: no fetch, fast.
	fetched, took, err := f.Ensure(context.Background(), digest)
	if err != nil || fetched {
		t.Fatalf("cached Ensure = fetched=%v, %v", fetched, err)
	}
	_ = took

	// An unknown digest 404s through to an error.
	missing := snapshot.Digest([]byte("never published"))
	if _, _, err := f.Ensure(context.Background(), missing); err == nil {
		t.Fatal("Ensure of an unpublished digest succeeded")
	}

	// Bad digest in the URL is a 400, not a file probe.
	resp, err := http.Get(ts.URL + BlobPathPrefix + "sha256:nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad digest status = %d", resp.StatusCode)
	}
}

func TestFetcherRejectsCorruptOrigin(t *testing.T) {
	// An origin that serves wrong bytes for a digest must not be able
	// to poison the local store.
	data := []byte("authentic")
	digest := snapshot.Digest(data)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "forged content")
	}))
	defer ts.Close()

	local := newStore(t)
	f := &Fetcher{Store: local, Origins: []string{ts.URL}}
	if _, _, err := f.Ensure(context.Background(), digest); err == nil {
		t.Fatal("Ensure accepted forged content")
	}
	if local.Has(digest) {
		t.Fatal("forged content published locally")
	}
}

func TestOpenUnknown(t *testing.T) {
	s := newStore(t)
	d := snapshot.Digest([]byte("ghost"))
	if _, err := s.Open(d); !errors.Is(err, ErrUnknownBlob) {
		t.Fatalf("Open unknown = %v", err)
	}
	if err := s.Remove(d); !errors.Is(err, ErrUnknownBlob) {
		t.Fatalf("Remove unknown = %v", err)
	}
}
