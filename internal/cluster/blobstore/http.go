package blobstore

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"geoalign/internal/snapshot"
)

// HTTP distribution. Each replica mounts ServeBlob under
// GET /v1/blobs/{digest}; a Fetcher pulls missing digests from one or
// more origins into the local store, verifying content on the way in.
// When replicas share the store directory instead (one NFS/EBS mount),
// Ensure finds every blob already present and the HTTP path is never
// exercised — the shared-dir "backend" is the degenerate fetch.

// BlobPathPrefix is the URL prefix blobs are served under.
const BlobPathPrefix = "/v1/blobs/"

// ServeBlob answers GET /v1/blobs/{digest} from the store. It serves
// with http.ServeContent (so Range and HEAD work, and the kernel can
// sendfile the mmap-able bytes) and marks the response immutable —
// content-addressed bytes never change.
func (s *Store) ServeBlob(w http.ResponseWriter, r *http.Request, digest string) {
	d, err := snapshot.ParseDigest(digest)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	f, err := s.Open(d)
	if err != nil {
		if errors.Is(err, ErrUnknownBlob) {
			http.Error(w, err.Error(), http.StatusNotFound)
		} else {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Cache-Control", "public, max-age=31536000, immutable")
	w.Header().Set("X-Geoalign-Digest", d)
	http.ServeContent(w, r, "", st.ModTime(), f)
}

// Fetcher pulls blobs from origin replicas into a local store.
type Fetcher struct {
	// Store receives fetched blobs.
	Store *Store
	// Origins are base URLs (e.g. "http://replica-a:8417") tried in
	// order until one serves the digest.
	Origins []string
	// Client issues the fetches; http.DefaultClient when nil.
	Client *http.Client
}

// blobURL joins an origin base URL with a digest's fetch path.
func blobURL(origin, digest string) (string, error) {
	u, err := url.Parse(origin)
	if err != nil {
		return "", fmt.Errorf("blobstore: origin %q: %w", origin, err)
	}
	return u.JoinPath(BlobPathPrefix, digest).String(), nil
}

// Ensure makes the digest present in the local store, fetching from
// the origins if needed. It reports whether a network fetch happened
// and how long the whole call took; an already-present blob returns in
// microseconds, which is what makes scale-out from a warm store cheap.
func (f *Fetcher) Ensure(ctx context.Context, digest string) (fetched bool, took time.Duration, err error) {
	start := time.Now()
	d, err := snapshot.ParseDigest(digest)
	if err != nil {
		return false, time.Since(start), err
	}
	if f.Store.Has(d) {
		return false, time.Since(start), nil
	}
	client := f.Client
	if client == nil {
		client = http.DefaultClient
	}
	var lastErr error
	for _, origin := range f.Origins {
		u, err := blobURL(origin, d)
		if err != nil {
			lastErr = err
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			lastErr = fmt.Errorf("blobstore: %s: %s", u, resp.Status)
			continue
		}
		_, err = f.Store.PutExpected(resp.Body, d)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		return true, time.Since(start), nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("blobstore: no origins configured for %s", d)
	}
	return false, time.Since(start), lastErr
}
