// Package cluster is GeoAlign's fleet-serving layer: a consistent-hash
// shard router in front of N geoalignd replicas, plus the manifest and
// blob plumbing (internal/cluster/blobstore) that gets every replica
// the engine snapshots it needs before it takes traffic.
//
// Routing is by engine name. One engine's requests concentrate on one
// replica, so that replica's page cache, solver warm starts, and
// result cache all stay hot for the engines it owns — the same reason
// the coalescer batches per engine, lifted to fleet scope. The ring
// uses consistent hashing with bounded loads (Mirrokni et al.,
// arXiv:1608.01350): a key's primary owner is the first virtual node
// clockwise from its hash, but a request may spill to the next
// distinct replica when the primary's in-flight load exceeds the
// configured factor over the fleet average. Spill is safe because
// replicas warm every manifest engine (mmap is ~5ms per engine), so
// ownership is an optimisation, never a correctness constraint.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// DefaultVNodes is the virtual-node count per replica when the caller
// passes 0: enough that removing one replica moves ~1/n of the key
// space with low variance, cheap enough that rebuilds are trivial.
const DefaultVNodes = 128

// DefaultLoadFactor bounds a replica's in-flight load at 25% over the
// fleet average before requests spill to the next ring node.
const DefaultLoadFactor = 1.25

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	node int // index into Ring.nodes
}

// nodeState is one replica's ring bookkeeping.
type nodeState struct {
	id       string
	inflight atomic.Int64
}

// Ring is a bounded-load consistent-hash ring over replica IDs. All
// methods are safe for concurrent use; Owner and the load counters are
// lock-free reads against an immutable points slice that membership
// changes swap wholesale.
type Ring struct {
	vnodes int
	factor float64

	mu    sync.Mutex // guards membership rebuilds
	state atomic.Pointer[ringState]

	total atomic.Int64 // in-flight requests fleet-wide
}

// ringState is the immutable membership snapshot Owner reads.
type ringState struct {
	nodes  []*nodeState // sorted by id
	points []ringPoint  // sorted by hash
}

// NewRing builds an empty ring. vnodes <= 0 takes DefaultVNodes;
// factor <= 1 disables bounded-load spill (pure consistent hashing).
func NewRing(vnodes int, factor float64) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes, factor: factor}
	r.state.Store(&ringState{})
	return r
}

// hashKey is FNV-1a with a splitmix64 finaliser. Raw FNV clusters on
// short sequential strings (vnode labels differ by one suffix digit),
// which skews ring balance badly; the finaliser's avalanche fixes the
// low-bit correlation without pulling in a crypto hash.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64() + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SetNodes replaces the ring membership. In-flight counters of nodes
// that persist across the change are carried over, so a rebalance does
// not forget the load picture.
func (r *Ring) SetNodes(ids []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.state.Load()
	carried := make(map[string]*nodeState, len(old.nodes))
	for _, n := range old.nodes {
		carried[n.id] = n
	}
	seen := make(map[string]bool, len(ids))
	nodes := make([]*nodeState, 0, len(ids))
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		if n, ok := carried[id]; ok {
			nodes = append(nodes, n)
		} else {
			nodes = append(nodes, &nodeState{id: id})
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].id < nodes[j].id })
	points := make([]ringPoint, 0, len(nodes)*r.vnodes)
	for ni, n := range nodes {
		for v := 0; v < r.vnodes; v++ {
			points = append(points, ringPoint{hash: hashKey(n.id + "#" + strconv.Itoa(v)), node: ni})
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].hash < points[j].hash })
	r.state.Store(&ringState{nodes: nodes, points: points})
}

// Nodes returns the current membership, sorted.
func (r *Ring) Nodes() []string {
	st := r.state.Load()
	out := make([]string, len(st.nodes))
	for i, n := range st.nodes {
		out[i] = n.id
	}
	return out
}

// Len reports the current replica count.
func (r *Ring) Len() int { return len(r.state.Load().nodes) }

// Owner returns the replica that should serve key: the primary owner,
// or — under bounded load — the first clockwise replica whose
// in-flight count is within factor × the fleet average. ok is false on
// an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	st := r.state.Load()
	if len(st.nodes) == 0 {
		return "", false
	}
	if len(st.nodes) == 1 {
		return st.nodes[0].id, true
	}
	h := hashKey(key)
	i := sort.Search(len(st.points), func(i int) bool { return st.points[i].hash >= h })
	if r.factor <= 1 {
		return st.nodes[st.points[i%len(st.points)].node].id, true
	}
	// Bounded load: admit the first distinct node clockwise whose
	// in-flight count (counting this request) stays within the bound.
	// The bound uses ceil so tiny fleets under light load never spill
	// spuriously (e.g. 1 in-flight on 2 nodes must admit the primary).
	bound := r.loadBound(len(st.nodes))
	primary := -1
	seen := 0
	for off := 0; off < len(st.points) && seen < len(st.nodes); off++ {
		p := st.points[(i+off)%len(st.points)]
		n := st.nodes[p.node]
		if p.node == primary {
			continue
		}
		if primary == -1 {
			primary = p.node
		}
		seen++
		if n.inflight.Load()+1 <= bound {
			return n.id, true
		}
	}
	// Every replica is at the bound (all equally loaded); the primary
	// is as good as any.
	return st.nodes[st.points[i%len(st.points)].node].id, true
}

// loadBound is the bounded-load admission threshold: ceil(factor ×
// (total+1) / n), per the CHBL paper, with the +1 counting the request
// being placed.
func (r *Ring) loadBound(n int) int64 {
	avg := float64(r.total.Load()+1) / float64(n)
	b := int64(r.factor * avg)
	if float64(b) < r.factor*avg {
		b++
	}
	if b < 1 {
		b = 1
	}
	return b
}

// OwnerSuccessors returns up to n distinct replicas clockwise from
// key's hash point, primary first — the failover order when the owner
// is unreachable.
func (r *Ring) OwnerSuccessors(key string, n int) []string {
	st := r.state.Load()
	if len(st.nodes) == 0 || n <= 0 {
		return nil
	}
	if n > len(st.nodes) {
		n = len(st.nodes)
	}
	h := hashKey(key)
	i := sort.Search(len(st.points), func(i int) bool { return st.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for off := 0; off < len(st.points) && len(out) < n; off++ {
		p := st.points[(i+off)%len(st.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, st.nodes[p.node].id)
	}
	return out
}

// Acquire records one in-flight request on node. It returns a release
// func; calling Acquire for a node no longer in the ring still works
// (the counter is simply orphaned when released).
func (r *Ring) Acquire(node string) func() {
	st := r.state.Load()
	i := sort.Search(len(st.nodes), func(i int) bool { return st.nodes[i].id >= node })
	if i >= len(st.nodes) || st.nodes[i].id != node {
		return func() {}
	}
	n := st.nodes[i]
	n.inflight.Add(1)
	r.total.Add(1)
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			n.inflight.Add(-1)
			r.total.Add(-1)
		}
	}
}

// Inflight reports node's current in-flight count, 0 for unknown nodes.
func (r *Ring) Inflight(node string) int64 {
	st := r.state.Load()
	i := sort.Search(len(st.nodes), func(i int) bool { return st.nodes[i].id >= node })
	if i >= len(st.nodes) || st.nodes[i].id != node {
		return 0
	}
	return st.nodes[i].inflight.Load()
}

// Describe summarises the ring for debugging endpoints.
func (r *Ring) Describe() string {
	st := r.state.Load()
	return fmt.Sprintf("%d replicas, %d points", len(st.nodes), len(st.points))
}
