package cluster_test

// End-to-end fleet tests: real geoalignd serving stacks (registry,
// coalescer, blob store) behind a real router, exercising the
// paths the unit tests fake — digest pull, mmap warm-up, hot swap
// under live traffic, and ring rebalance when a replica dies.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geoalign"
	"geoalign/internal/cluster"
	"geoalign/internal/cluster/blobstore"
	"geoalign/internal/serve"
	"geoalign/internal/synth"
)

// buildAligner builds a serving-configuration engine over a synthetic
// scaling problem (same construction the serve package pins bit-
// identity against).
func buildAligner(tb testing.TB, seed int64, ns, nt, k int) *geoalign.Aligner {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := synth.ScalingProblem(rng, ns, nt, k)
	refs := make([]geoalign.Reference, len(p.References))
	for kk, r := range p.References {
		xw := geoalign.NewCrosswalk(r.DM.Rows, r.DM.Cols)
		for i := 0; i < r.DM.Rows; i++ {
			cols, vals := r.DM.Row(i)
			for t, j := range cols {
				if err := xw.Add(i, j, vals[t]); err != nil {
					tb.Fatal(err)
				}
			}
		}
		refs[kk] = geoalign.Reference{Name: r.Name, Crosswalk: xw}
	}
	al, err := geoalign.NewAligner(refs, &geoalign.AlignerOptions{DiscardCrosswalks: true, Workers: 2})
	if err != nil {
		tb.Fatal(err)
	}
	return al
}

func randObjective(rng *rand.Rand, ns int) []float64 {
	obj := make([]float64, ns)
	for i := range obj {
		obj[i] = rng.Float64() * 100
	}
	return obj
}

// publishSnapshot persists an engine and publishes it to a blob store.
func publishSnapshot(tb testing.TB, store *blobstore.Store, al *geoalign.Aligner) string {
	tb.Helper()
	al.PrecomputeSolverCaches()
	path := filepath.Join(tb.TempDir(), "engine.snap")
	if err := al.WriteSnapshot(path, &geoalign.SnapshotMeta{}); err != nil {
		tb.Fatal(err)
	}
	digest, _, err := store.PutFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return digest
}

// replica is one real serving stack with its own blob store.
type replica struct {
	srv   *serve.Server
	ts    *httptest.Server
	store *blobstore.Store
}

func newReplica(tb testing.TB, cfg serve.Config) *replica {
	tb.Helper()
	store, err := blobstore.Open(filepath.Join(tb.TempDir(), "blobs"))
	if err != nil {
		tb.Fatal(err)
	}
	cfg.Blobs = store
	srv := serve.NewServer(serve.NewRegistry(), cfg)
	ts := httptest.NewServer(srv.Handler())
	tb.Cleanup(func() { ts.Close(); srv.Shutdown() })
	return &replica{srv: srv, ts: ts, store: store}
}

type alignReq struct {
	Engine    string    `json:"engine"`
	Objective []float64 `json:"objective"`
}

type alignResp struct {
	Engine string    `json:"engine"`
	Target []float64 `json:"target"`
}

func alignVia(client *http.Client, base string, req alignReq) (alignResp, int, string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return alignResp{}, 0, "", err
	}
	resp, err := client.Post(base+"/v1/align", "application/json", bytes.NewReader(body))
	if err != nil {
		return alignResp{}, 0, "", err
	}
	defer resp.Body.Close()
	shard := resp.Header.Get(cluster.ShardHeader)
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return alignResp{}, resp.StatusCode, shard, fmt.Errorf("align: %s: %s", resp.Status, msg)
	}
	var out alignResp
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return alignResp{}, resp.StatusCode, shard, err
	}
	return out, resp.StatusCode, shard, nil
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// broadcastManifest rolls a manifest out fleet-wide through the router.
func broadcastManifest(tb testing.TB, routerURL string, engines map[string]blobstore.ManifestEntry, fetchFrom []string) {
	tb.Helper()
	body, _ := json.Marshal(map[string]any{"engines": engines, "fetch_from": fetchFrom})
	resp, err := http.Post(routerURL+"/v1/cluster/manifest", "application/json", bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	detail, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("manifest broadcast: %s: %s", resp.Status, detail)
	}
}

// TestClusterHotSwapMidTraffic is the headline zero-downtime test: two
// replicas behind a router serve continuous traffic while the fleet
// manifest moves engine "hot" from snapshot d1 to d2. Requirements:
// zero failed requests, every response bit-identical to exactly one of
// the two generations (no torn state), and only the new generation
// after the rollout converges.
func TestClusterHotSwapMidTraffic(t *testing.T) {
	const ns, nt, k = 120, 12, 2
	al1 := buildAligner(t, 21, ns, nt, k)
	al2 := buildAligner(t, 22, ns, nt, k)

	// Replica A doubles as the blob origin; B pulls digests from A.
	a := newReplica(t, serve.Config{})
	b := newReplica(t, serve.Config{})
	d1 := publishSnapshot(t, a.store, al1)
	d2 := publishSnapshot(t, a.store, al2)

	rt, err := cluster.NewRouter(cluster.RouterConfig{Replicas: []string{a.ts.URL, b.ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	routerTS := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { routerTS.Close(); rt.Close() })

	// Roll out generation 1 fleet-wide and pin the single-node
	// baselines both generations must match bit-for-bit.
	broadcastManifest(t, routerTS.URL, map[string]blobstore.ManifestEntry{"hot": {Digest: d1}}, []string{a.ts.URL})
	obj := randObjective(rand.New(rand.NewSource(5)), ns)
	want1, err := al1.Align(obj)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := al2.Align(obj)
	if err != nil {
		t.Fatal(err)
	}
	if floatsEqual(want1.Target, want2.Target) {
		t.Fatal("generations are indistinguishable; test cannot observe the swap")
	}

	// Continuous traffic: 4 clients hammer the router while the swap
	// lands. Every response must match exactly one generation.
	var (
		failed   atomic.Int64
		gen1Hits atomic.Int64
		gen2Hits atomic.Int64
		torn     atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
	)
	client := &http.Client{}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				out, status, _, err := alignVia(client, routerTS.URL, alignReq{Engine: "hot", Objective: obj})
				if err != nil || status != http.StatusOK {
					failed.Add(1)
					continue
				}
				switch {
				case floatsEqual(out.Target, want1.Target):
					gen1Hits.Add(1)
				case floatsEqual(out.Target, want2.Target):
					gen2Hits.Add(1)
				default:
					torn.Add(1)
				}
			}
		}()
	}

	// Let gen-1 traffic flow, swap mid-stream, let gen-2 traffic flow.
	time.Sleep(50 * time.Millisecond)
	broadcastManifest(t, routerTS.URL, map[string]blobstore.ManifestEntry{"hot": {Digest: d2}}, []string{a.ts.URL})
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if n := failed.Load(); n != 0 {
		t.Fatalf("%d requests failed during hot swap (want 0)", n)
	}
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d responses matched neither generation (torn state)", n)
	}
	if gen1Hits.Load() == 0 || gen2Hits.Load() == 0 {
		t.Fatalf("swap not observed under traffic: gen1=%d gen2=%d", gen1Hits.Load(), gen2Hits.Load())
	}

	// Rollout converged: both replicas now serve generation 2 and say
	// so on the fleet manifest; further responses are gen-2 only.
	for _, rep := range []*replica{a, b} {
		if gen := rep.srv.Registry().Generation("hot"); gen != 2 {
			t.Fatalf("replica %s at generation %d, want 2", rep.ts.URL, gen)
		}
	}
	mresp, err := http.Get(routerTS.URL + "/v1/cluster/manifest")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Engines  map[string]blobstore.ManifestEntry `json:"engines"`
		Diverged []string                           `json:"diverged"`
	}
	json.NewDecoder(mresp.Body).Decode(&m)
	mresp.Body.Close()
	if m.Engines["hot"].Digest != d2 || len(m.Diverged) != 0 {
		t.Fatalf("fleet manifest after rollout: %+v", m)
	}
	out, _, _, err := alignVia(client, routerTS.URL, alignReq{Engine: "hot", Objective: obj})
	if err != nil || !floatsEqual(out.Target, want2.Target) {
		t.Fatalf("post-rollout response not generation-2 (err=%v)", err)
	}
}

// TestClusterRebalanceOnReplicaDeath kills one real replica under
// traffic and requires the fleet to keep answering: the first request
// to the dead shard fails over transparently, the replica is ejected,
// and the ring rebalances every engine onto the survivor with results
// still bit-identical to the single-node baseline.
func TestClusterRebalanceOnReplicaDeath(t *testing.T) {
	const ns, nt, k = 100, 10, 2
	al := buildAligner(t, 31, ns, nt, k)

	a := newReplica(t, serve.Config{})
	b := newReplica(t, serve.Config{})
	digest := publishSnapshot(t, a.store, al)

	rt, err := cluster.NewRouter(cluster.RouterConfig{Replicas: []string{a.ts.URL, b.ts.URL}, FailAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	routerTS := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { routerTS.Close(); rt.Close() })

	// Several engines, same snapshot, chosen so both replicas own at
	// least one (candidate names are probed against the ring until
	// each replica has two).
	engines := map[string]blobstore.ManifestEntry{}
	var names []string
	perReplica := map[string]int{}
	for i := 0; len(names) < 6; i++ {
		n := fmt.Sprintf("layer-%d", i)
		owner, ok := rt.Ring().Owner(n)
		if !ok {
			t.Fatal("ring empty")
		}
		if perReplica[owner] >= 3 {
			continue
		}
		perReplica[owner]++
		names = append(names, n)
		engines[n] = blobstore.ManifestEntry{Digest: digest}
	}
	broadcastManifest(t, routerTS.URL, engines, []string{a.ts.URL})

	obj := randObjective(rand.New(rand.NewSource(6)), ns)
	want, err := al.Align(obj)
	if err != nil {
		t.Fatal(err)
	}

	client := &http.Client{}
	ownedByB := ""
	for _, n := range names {
		out, status, shard, err := alignVia(client, routerTS.URL, alignReq{Engine: n, Objective: obj})
		if err != nil || status != http.StatusOK {
			t.Fatalf("pre-kill align %s: %v", n, err)
		}
		if !floatsEqual(out.Target, want.Target) {
			t.Fatalf("engine %s not bit-identical to baseline", n)
		}
		if shard == b.ts.URL {
			ownedByB = n
		}
	}
	if ownedByB == "" {
		t.Fatal("no engine served by replica b despite ring ownership")
	}

	// Kill b. Every engine — including those b owned — must keep
	// serving through a with zero failed requests.
	b.ts.Close()
	for _, n := range names {
		out, status, shard, err := alignVia(client, routerTS.URL, alignReq{Engine: n, Objective: obj})
		if err != nil || status != http.StatusOK {
			t.Fatalf("post-kill align %s: status=%d err=%v", n, status, err)
		}
		if shard != a.ts.URL {
			t.Fatalf("post-kill engine %s served by %q, want survivor %q", n, shard, a.ts.URL)
		}
		if !floatsEqual(out.Target, want.Target) {
			t.Fatalf("post-kill engine %s not bit-identical to baseline", n)
		}
	}

	// The ring converged on the survivor.
	if nodes := rt.Ring().Nodes(); len(nodes) != 1 || nodes[0] != a.ts.URL {
		t.Fatalf("ring after death = %v", nodes)
	}
	hresp, err := http.Get(routerTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	json.NewDecoder(hresp.Body).Decode(&health)
	hresp.Body.Close()
	if health.Status != "degraded" {
		t.Fatalf("cluster health = %q, want degraded", health.Status)
	}
}

// TestClusterWarmupIsMmapFast pins the scale-out story: a fresh
// replica joining with the blob already cached warms an engine by
// mmap, which must be far cheaper than rebuilding it. The e2e engine
// is small, so the bound here is generous; BenchmarkWarmup measures
// the US-scale numbers quoted in the README.
func TestClusterWarmupIsMmapFast(t *testing.T) {
	al := buildAligner(t, 41, 200, 16, 3)
	origin := newReplica(t, serve.Config{})
	digest := publishSnapshot(t, origin.store, al)

	fresh := newReplica(t, serve.Config{})
	body, _ := json.Marshal(map[string]any{
		"engines":    map[string]blobstore.ManifestEntry{"warm": {Digest: digest}},
		"fetch_from": []string{origin.ts.URL},
	})
	resp, err := http.Post(fresh.ts.URL+"/v1/cluster/manifest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Engines map[string]struct {
			Status     string  `json:"status"`
			Fetched    bool    `json:"fetched"`
			LoadMillis float64 `json:"load_millis"`
		} `json:"engines"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	res := out.Engines["warm"]
	if resp.StatusCode != http.StatusOK || res.Status != "registered" || !res.Fetched {
		t.Fatalf("first warm-up: %d %+v", resp.StatusCode, res)
	}

	// Second replica warm-up with the blob pre-seeded (the common
	// scale-out path: shared image or earlier pull) must skip the
	// fetch entirely and just mmap.
	seeded := newReplica(t, serve.Config{})
	blobPath, err := fresh.store.Path(digest)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := seeded.store.PutFile(blobPath); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(seeded.ts.URL+"/v1/cluster/manifest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out.Engines = nil
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	res = out.Engines["warm"]
	if res.Status != "registered" || res.Fetched {
		t.Fatalf("seeded warm-up fetched over the network: %+v", res)
	}
	if res.LoadMillis <= 0 || res.LoadMillis > 1000 {
		t.Fatalf("seeded warm-up load_ms = %v", res.LoadMillis)
	}
}
