package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeReplica is a scriptable geoalignd stand-in: it serves /healthz
// like the real thing and lets each test inject align behaviour.
type fakeReplica struct {
	ts     *httptest.Server
	aligns atomic.Int64
	handle func(w http.ResponseWriter, r *http.Request)
}

func newFakeReplica(t *testing.T, handle func(w http.ResponseWriter, r *http.Request)) *fakeReplica {
	t.Helper()
	f := &fakeReplica{handle: handle}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok","engines":1}`)
	})
	serve := func(w http.ResponseWriter, r *http.Request) {
		f.aligns.Add(1)
		if f.handle != nil {
			f.handle(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"engine":"e","target":[1],"weights":[1],"batched":1}`)
	}
	mux.HandleFunc("POST /v1/align", serve)
	mux.HandleFunc("POST /v1/align/batch", serve)
	mux.HandleFunc("POST /v1/engines/{name}/delta", serve)
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func newTestRouter(t *testing.T, cfg RouterConfig, replicas ...*fakeReplica) (*Router, *httptest.Server) {
	t.Helper()
	for _, f := range replicas {
		cfg.Replicas = append(cfg.Replicas, f.ts.URL)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { ts.Close(); rt.Close() })
	return rt, ts
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestRouterRoutesByEngine(t *testing.T) {
	a := newFakeReplica(t, nil)
	b := newFakeReplica(t, nil)
	rt, ts := newTestRouter(t, RouterConfig{}, a, b)

	// Requests for one engine land on its ring owner, every time,
	// whether the name arrives via query parameter or JSON body.
	owner, ok := rt.Ring().Owner("e1")
	if !ok {
		t.Fatal("no owner")
	}
	for i := 0; i < 8; i++ {
		body := `{"engine":"e1","objective":[1,2]}`
		url := ts.URL + "/v1/align"
		if i%2 == 0 {
			url += "?engine=e1"
			body = `{"objective":[1,2]}`
		}
		resp := postJSON(t, url, body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("align %d = %d", i, resp.StatusCode)
		}
		if got := resp.Header.Get(ShardHeader); got != owner {
			t.Fatalf("shard header = %q, want owner %q", got, owner)
		}
	}
	total := a.aligns.Load() + b.aligns.Load()
	if total != 8 {
		t.Fatalf("replicas served %d aligns, want 8", total)
	}
	if a.aligns.Load() != 0 && b.aligns.Load() != 0 {
		t.Fatal("one engine's requests split across replicas")
	}

	// Missing engine name is rejected at the router, not proxied.
	resp := postJSON(t, ts.URL+"/v1/align", `{"objective":[1]}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing engine = %d, want 400", resp.StatusCode)
	}
}

func TestRouterDeltaRoutesByPathName(t *testing.T) {
	var gotPath atomic.Value
	record := func(w http.ResponseWriter, r *http.Request) {
		gotPath.Store(r.URL.Path)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"engine":"e9","generation":2}`)
	}
	a := newFakeReplica(t, record)
	b := newFakeReplica(t, record)
	rt, ts := newTestRouter(t, RouterConfig{}, a, b)

	resp := postJSON(t, ts.URL+"/v1/engines/e9/delta", `{}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta = %d", resp.StatusCode)
	}
	if p := gotPath.Load(); p != "/v1/engines/e9/delta" {
		t.Fatalf("replica saw path %v", p)
	}
	owner, _ := rt.Ring().Owner("e9")
	if got := resp.Header.Get(ShardHeader); got != owner {
		t.Fatalf("delta shard = %q, want %q", got, owner)
	}
}

func TestRouterShedPassthrough(t *testing.T) {
	// A replica under admission pressure sheds with 429 + Retry-After;
	// the router must relay both unchanged (end-to-end backpressure)
	// and still name the shard.
	shedding := newFakeReplica(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"overloaded: queue full"}`)
	})
	rt, ts := newTestRouter(t, RouterConfig{}, shedding)

	resp := postJSON(t, ts.URL+"/v1/align?engine=e1", `{"objective":[1]}`)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want 1 (must pass through)", ra)
	}
	if !strings.Contains(string(body), "overloaded") {
		t.Fatalf("shed body not passed through: %s", body)
	}
	if resp.Header.Get(ShardHeader) == "" {
		t.Fatal("shard header missing on shed response")
	}
	if rt.metrics.shed.Load() != 1 {
		t.Fatalf("router shed metric = %d", rt.metrics.shed.Load())
	}
}

func TestRouterFailoverOnDeadReplica(t *testing.T) {
	a := newFakeReplica(t, nil)
	b := newFakeReplica(t, nil)
	rt, ts := newTestRouter(t, RouterConfig{FailAfter: 1}, a, b)

	// Find an engine owned by replica a, then kill a. The first
	// request must transparently fail over to b — and the transport
	// error doubles as a probe failure, ejecting a immediately.
	engine := ""
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("eng-%d", i)
		if owner, _ := rt.Ring().Owner(name); owner == a.ts.URL {
			engine = name
			break
		}
	}
	if engine == "" {
		t.Fatal("no engine hashed to replica a")
	}
	a.ts.Close()

	resp := postJSON(t, ts.URL+"/v1/align?engine="+engine, `{"objective":[1]}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover align = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(ShardHeader); got != b.ts.URL {
		t.Fatalf("served by %q, want survivor %q", got, b.ts.URL)
	}
	if rt.metrics.retries.Load() == 0 {
		t.Fatal("no retry recorded")
	}

	// The dead replica is already out of the ring: the survivor now
	// owns the engine directly and no further retries are paid.
	if owner, _ := rt.Ring().Owner(engine); owner != b.ts.URL {
		t.Fatalf("post-ejection owner = %q", owner)
	}
	before := rt.metrics.retries.Load()
	resp = postJSON(t, ts.URL+"/v1/align?engine="+engine, `{"objective":[1]}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rt.metrics.retries.Load() != before {
		t.Fatalf("second request: status %d, retries %d -> %d", resp.StatusCode, before, rt.metrics.retries.Load())
	}
	if rt.metrics.ejections.Load() != 1 {
		t.Fatalf("ejections = %d, want 1", rt.metrics.ejections.Load())
	}
}

func TestRouterProbeEjectAndReadmit(t *testing.T) {
	a := newFakeReplica(t, nil)
	b := newFakeReplica(t, nil)
	rt, _ := newTestRouter(t, RouterConfig{FailAfter: 2, ProbeTimeout: 200 * time.Millisecond}, a, b)

	if n := len(rt.Ring().Nodes()); n != 2 {
		t.Fatalf("initial ring size = %d", n)
	}

	// Take a down: two failed probe rounds eject it.
	a.ts.Close()
	ctx := context.Background()
	rt.ProbeOnce(ctx)
	if n := len(rt.Ring().Nodes()); n != 2 {
		t.Fatalf("ejected after one probe failure (FailAfter=2), ring size = %d", n)
	}
	rt.ProbeOnce(ctx)
	if nodes := rt.Ring().Nodes(); len(nodes) != 1 || nodes[0] != b.ts.URL {
		t.Fatalf("post-ejection ring = %v", nodes)
	}

	// Every engine now maps to the survivor.
	for i := 0; i < 16; i++ {
		if owner, ok := rt.Ring().Owner(fmt.Sprintf("eng-%d", i)); !ok || owner != b.ts.URL {
			t.Fatalf("engine %d owner = %q after ejection", i, owner)
		}
	}

	// One healthy probe readmits it. (Rebind is not possible on a
	// closed httptest server, so readmission is exercised end-to-end
	// in the e2e test; here we verify the down replica stays out.)
	rt.ProbeOnce(ctx)
	if n := len(rt.Ring().Nodes()); n != 1 {
		t.Fatalf("dead replica readmitted, ring size = %d", n)
	}
	if rt.metrics.ejections.Load() != 1 {
		t.Fatalf("ejections = %d", rt.metrics.ejections.Load())
	}
}

func TestRouterAllReplicasDown(t *testing.T) {
	a := newFakeReplica(t, nil)
	rt, ts := newTestRouter(t, RouterConfig{FailAfter: 1}, a)
	a.ts.Close()
	rt.ProbeOnce(context.Background())

	resp := postJSON(t, ts.URL+"/v1/align?engine=e1", `{"objective":[1]}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	json.NewDecoder(hresp.Body).Decode(&health)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable || health.Status != "down" {
		t.Fatalf("healthz = %d %q", hresp.StatusCode, health.Status)
	}
}

func TestRouterEnginesAggregate(t *testing.T) {
	// Replicas report different engine sets; the router merges them
	// into one listing annotated with replica and shard owner.
	build := func(listing string) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, `{"status":"ok","engines":1}`)
		})
		mux.HandleFunc("GET /v1/engines", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, listing)
		})
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		return ts
	}
	r1 := build(`{"engines":[{"name":"alpha","generation":3},{"name":"beta","generation":1}]}`)
	r2 := build(`{"engines":[{"name":"alpha","generation":3}]}`)

	rt, err := NewRouter(RouterConfig{Replicas: []string{r1.URL, r2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { ts.Close(); rt.Close() })

	resp, err := http.Get(ts.URL + "/v1/engines")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Engines []map[string]any `json:"engines"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if len(out.Engines) != 3 {
		t.Fatalf("aggregated %d entries, want 3: %+v", len(out.Engines), out.Engines)
	}
	wantOwner, _ := rt.Ring().Owner("alpha")
	for _, e := range out.Engines {
		if e["replica"] == "" {
			t.Fatalf("entry missing replica: %+v", e)
		}
		if e["name"] == "alpha" && e["shard_owner"] != wantOwner {
			t.Fatalf("alpha shard_owner = %v, want %v", e["shard_owner"], wantOwner)
		}
	}
	// Sorted by (name, replica): alpha, alpha, beta.
	if out.Engines[0]["name"] != "alpha" || out.Engines[2]["name"] != "beta" {
		t.Fatalf("aggregate order: %+v", out.Engines)
	}
}

func TestRouterManifestBroadcast(t *testing.T) {
	var got [2]atomic.Int64
	build := func(i int, status int) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, `{"status":"ok","engines":0}`)
		})
		mux.HandleFunc("POST /v1/cluster/manifest", func(w http.ResponseWriter, r *http.Request) {
			body, _ := io.ReadAll(r.Body)
			if !bytes.Contains(body, []byte("sha256:")) {
				t.Errorf("replica %d got body %s", i, body)
			}
			got[i].Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			fmt.Fprint(w, `{"engines":{}}`)
		})
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		return ts
	}
	ok := build(0, http.StatusOK)
	bad := build(1, http.StatusBadGateway)

	rt, err := NewRouter(RouterConfig{Replicas: []string{ok.URL, bad.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { ts.Close(); rt.Close() })

	manifest := `{"engines":{"e1":{"digest":"sha256:` + strings.Repeat("ab", 32) + `"}}}`
	resp := postJSON(t, ts.URL+"/v1/cluster/manifest", manifest)
	var out struct {
		Replicas map[string]struct {
			Error string `json:"error"`
		} `json:"replicas"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("broadcast with one failing replica = %d, want 502", resp.StatusCode)
	}
	if got[0].Load() != 1 || got[1].Load() != 1 {
		t.Fatalf("broadcast reached %d/%d replicas", got[0].Load(), got[1].Load())
	}
	if out.Replicas[ok.URL].Error != "" || out.Replicas[bad.URL].Error == "" {
		t.Fatalf("per-replica detail wrong: %+v", out.Replicas)
	}
}

func TestRouterRejectsBadConfig(t *testing.T) {
	if _, err := NewRouter(RouterConfig{}); err == nil {
		t.Fatal("empty replica list accepted")
	}
	if _, err := NewRouter(RouterConfig{Replicas: []string{"not a url"}}); err == nil {
		t.Fatal("bad replica URL accepted")
	}
}
