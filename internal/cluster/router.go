package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Router is the fleet front door: it owns the replica ring, probes
// replica health, and proxies the serving API to shard owners.
//
// The proxy path is deliberately thin. Request bodies are passed
// through as raw bytes — the binary align codec is never decoded, so
// routing a 30k-source objective costs one buffered read and one
// write, not a float parse — and responses stream straight through
// with the replica's status and headers intact. In particular a
// replica's 429 + Retry-After shed response reaches the client
// unchanged: backpressure is end-to-end, the router never absorbs or
// retries it. The only header the router adds is X-Geoalign-Shard,
// naming the replica that served the request, so a misbehaving shard
// is one curl -i away from being identified.
type Router struct {
	cfg    RouterConfig
	ring   *Ring
	client *http.Client
	mux    *http.ServeMux

	mu       sync.Mutex
	replicas map[string]*replicaState

	metrics routerMetrics

	wg     sync.WaitGroup
	cancel context.CancelFunc
}

// RouterConfig tunes a Router. Zero values take the defaults noted.
type RouterConfig struct {
	// Replicas are the geoalignd base URLs the router shards over
	// (e.g. "http://10.0.0.7:8417"). Required, deduplicated.
	Replicas []string
	// VNodes is the virtual-node count per replica; DefaultVNodes when
	// 0.
	VNodes int
	// LoadFactor bounds a replica's in-flight load relative to the
	// fleet average before requests spill to the next ring node;
	// DefaultLoadFactor when 0, <= 1 disables spill.
	LoadFactor float64
	// ProbeInterval is the health-probe cadence; default 2s.
	ProbeInterval time.Duration
	// ProbeTimeout caps one /healthz probe; default 1s.
	ProbeTimeout time.Duration
	// FailAfter ejects a replica from the ring after this many
	// consecutive probe failures; default 2. One successful probe
	// readmits it.
	FailAfter int
	// Transport overrides the pooled keep-alive transport.
	Transport http.RoundTripper
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.VNodes == 0 {
		c.VNodes = DefaultVNodes
	}
	if c.LoadFactor == 0 {
		c.LoadFactor = DefaultLoadFactor
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FailAfter == 0 {
		c.FailAfter = 2
	}
	if c.Transport == nil {
		c.Transport = newTransport()
	}
	return c
}

// newTransport builds the pooled keep-alive transport the proxy path
// rides: generous per-host idle connections (every request to a shard
// reuses a warm TCP connection instead of paying a handshake) and no
// proxy/compression middlemen on the binary bodies.
func newTransport() *http.Transport {
	return &http.Transport{
		DialContext:         (&net.Dialer{Timeout: 5 * time.Second, KeepAlive: 30 * time.Second}).DialContext,
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
		DisableCompression:  true,
	}
}

// replicaState is the router's health bookkeeping for one replica.
type replicaState struct {
	id string // normalised base URL

	// Guarded by Router.mu; written only by the probe loop and
	// transport-failure reports.
	healthy     bool
	consecFails int
	lastErr     string
	lastProbe   time.Time
	probeMillis float64
	engineCount int64
	proxied     atomic.Int64
	proxyErrors atomic.Int64
}

// routerMetrics counts what the router itself does.
type routerMetrics struct {
	requests    atomic.Int64 // requests received on proxied routes
	proxied     atomic.Int64 // requests forwarded to a replica
	retries     atomic.Int64 // transparent failovers after transport errors
	shed        atomic.Int64 // 429s passed through from replicas
	noReplica   atomic.Int64 // requests failed for want of a healthy replica
	proxyErrors atomic.Int64 // requests failed on transport errors (post-retry)
	probes      atomic.Int64 // health probes issued
	ejections   atomic.Int64 // replicas ejected from the ring
	readmits    atomic.Int64 // replicas readmitted after recovery
}

// NewRouter builds a router over the configured replica fleet. Every
// replica starts healthy (in the ring); the health prober adjusts
// membership from there. Call Start to begin probing and Close to stop.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("cluster: no replicas configured")
	}
	rt := &Router{
		cfg:      cfg,
		ring:     NewRing(cfg.VNodes, cfg.LoadFactor),
		client:   &http.Client{Transport: cfg.Transport},
		mux:      http.NewServeMux(),
		replicas: make(map[string]*replicaState),
	}
	for _, raw := range cfg.Replicas {
		id, err := normalizeReplica(raw)
		if err != nil {
			return nil, err
		}
		if _, dup := rt.replicas[id]; dup {
			continue
		}
		rt.replicas[id] = &replicaState{id: id, healthy: true}
	}
	rt.rebuildRing()

	rt.mux.HandleFunc("POST /v1/align", rt.handleAlign)
	rt.mux.HandleFunc("POST /v1/align/batch", rt.handleAlign)
	rt.mux.HandleFunc("POST /v1/engines/{name}/delta", rt.handleDelta)
	rt.mux.HandleFunc("GET /v1/engines", rt.handleEngines)
	rt.mux.HandleFunc("GET /v1/cluster/manifest", rt.handleManifestGet)
	rt.mux.HandleFunc("POST /v1/cluster/manifest", rt.handleManifestBroadcast)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return rt, nil
}

// normalizeReplica validates a replica base URL and strips any
// trailing slash so IDs compare stably.
func normalizeReplica(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return "", fmt.Errorf("cluster: bad replica URL %q (want e.g. http://host:8417)", raw)
	}
	u.Path = strings.TrimSuffix(u.Path, "/")
	return u.String(), nil
}

// Handler returns the router's HTTP handler tree.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Ring exposes the router's hash ring (read-mostly; used by tests and
// the health endpoint).
func (rt *Router) Ring() *Ring { return rt.ring }

// Start launches the background health prober. Close stops it.
func (rt *Router) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	rt.cancel = cancel
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		t := time.NewTicker(rt.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				rt.ProbeOnce(ctx)
			}
		}
	}()
}

// Close stops the health prober and closes idle upstream connections.
func (rt *Router) Close() {
	if rt.cancel != nil {
		rt.cancel()
		rt.wg.Wait()
	}
	if tr, ok := rt.cfg.Transport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
}

// rebuildRing recomputes ring membership from replica health. Caller
// must not hold rt.mu... (it locks internally).
func (rt *Router) rebuildRing() {
	rt.mu.Lock()
	ids := make([]string, 0, len(rt.replicas))
	for id, st := range rt.replicas {
		if st.healthy {
			ids = append(ids, id)
		}
	}
	rt.mu.Unlock()
	sort.Strings(ids)
	rt.ring.SetNodes(ids)
}

// ProbeOnce probes every replica's /healthz once, synchronously, and
// updates ring membership. The probe loop calls it on a cadence; tests
// call it directly for deterministic rebalance scenarios.
func (rt *Router) ProbeOnce(ctx context.Context) {
	rt.mu.Lock()
	targets := make([]*replicaState, 0, len(rt.replicas))
	for _, st := range rt.replicas {
		targets = append(targets, st)
	}
	rt.mu.Unlock()

	type outcome struct {
		st      *replicaState
		err     error
		took    time.Duration
		engines int64
	}
	results := make([]outcome, len(targets))
	var wg sync.WaitGroup
	for i, st := range targets {
		wg.Add(1)
		go func(i int, st *replicaState) {
			defer wg.Done()
			rt.metrics.probes.Add(1)
			pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
			defer cancel()
			start := time.Now()
			engines, err := rt.probeHealth(pctx, st.id)
			results[i] = outcome{st: st, err: err, took: time.Since(start), engines: engines}
		}(i, st)
	}
	wg.Wait()

	changed := false
	rt.mu.Lock()
	for _, res := range results {
		st := res.st
		st.lastProbe = time.Now()
		st.probeMillis = float64(res.took) / float64(time.Millisecond)
		if res.err != nil {
			st.consecFails++
			st.lastErr = res.err.Error()
			if st.healthy && st.consecFails >= rt.cfg.FailAfter {
				st.healthy = false
				changed = true
				rt.metrics.ejections.Add(1)
			}
			continue
		}
		st.consecFails = 0
		st.lastErr = ""
		st.engineCount = res.engines
		if !st.healthy {
			st.healthy = true
			changed = true
			rt.metrics.readmits.Add(1)
		}
	}
	rt.mu.Unlock()
	if changed {
		rt.rebuildRing()
	}
}

// probeHealth fetches one replica's /healthz and returns its engine
// count. Any non-200 or malformed body is a failed probe.
func (rt *Router) probeHealth(ctx context.Context, id string) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, id+"/healthz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		return 0, fmt.Errorf("healthz %s", resp.Status)
	}
	var body struct {
		Status  string `json:"status"`
		Engines int64  `json:"engines"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err != nil {
		return 0, err
	}
	if body.Status != "ok" {
		return 0, fmt.Errorf("healthz status %q", body.Status)
	}
	return body.Engines, nil
}

// reportTransportFailure counts a proxy-time connection failure as a
// probe failure, so a dead replica is ejected at request speed instead
// of waiting out the probe cadence.
func (rt *Router) reportTransportFailure(id string, err error) {
	changed := false
	rt.mu.Lock()
	if st, ok := rt.replicas[id]; ok {
		st.consecFails++
		st.lastErr = err.Error()
		if st.healthy && st.consecFails >= rt.cfg.FailAfter {
			st.healthy = false
			changed = true
			rt.metrics.ejections.Add(1)
		}
	}
	rt.mu.Unlock()
	if changed {
		rt.rebuildRing()
	}
}

// ShardHeader names the replica that served a proxied request.
const ShardHeader = "X-Geoalign-Shard"

// maxProxyBody caps buffered request bodies, matching the replicas'
// own MaxBytesReader limit.
const maxProxyBody = 1 << 28

// proxyBufPool recycles body and copy buffers on the proxy path.
var proxyBufPool = sync.Pool{New: func() any { b := make([]byte, 64<<10); return &b }}

type errorBody struct {
	Error string `json:"error"`
}

func (rt *Router) writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: msg})
}

// engineOf extracts the routing key from an align request: the
// ?engine= query parameter when present (always, for binary bodies),
// otherwise the "engine" field of the JSON body.
func engineOf(r *http.Request, body []byte) string {
	if name := r.URL.Query().Get("engine"); name != "" {
		return name
	}
	var peek struct {
		Engine string `json:"engine"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		return ""
	}
	return peek.Engine
}

func (rt *Router) handleAlign(w http.ResponseWriter, r *http.Request) {
	rt.metrics.requests.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxProxyBody))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	engine := engineOf(r, body)
	if engine == "" {
		rt.writeError(w, http.StatusBadRequest, "cluster: missing engine name (?engine= or JSON \"engine\" field)")
		return
	}
	rt.proxy(w, r, engine, body)
}

func (rt *Router) handleDelta(w http.ResponseWriter, r *http.Request) {
	rt.metrics.requests.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxProxyBody))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	// Deltas route like aligns: the engine's shard owner applies the
	// revision. (Fleet-wide rollout of the revised snapshot is the
	// manifest broadcast's job, not the delta path's.)
	rt.proxy(w, r, r.PathValue("name"), body)
}

// proxy forwards the request body to the engine's shard owner,
// failing over to ring successors on transport errors. Replica HTTP
// statuses — including 429 shed responses — pass through verbatim.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, engine string, body []byte) {
	owner, ok := rt.ring.Owner(engine)
	if !ok {
		rt.metrics.noReplica.Add(1)
		rt.writeError(w, http.StatusServiceUnavailable, "cluster: no healthy replicas")
		return
	}
	// Failover order: bounded-load owner first, then ring successors
	// not already tried.
	tried := map[string]bool{owner: true}
	targets := []string{owner}
	for _, s := range rt.ring.OwnerSuccessors(engine, 3) {
		if !tried[s] {
			tried[s] = true
			targets = append(targets, s)
		}
	}

	var lastErr error
	for attempt, id := range targets {
		if attempt > 0 {
			rt.metrics.retries.Add(1)
		}
		release := rt.ring.Acquire(id)
		done, err := rt.forward(w, r, id, engine, body)
		release()
		if err == nil {
			return
		}
		lastErr = err
		if done {
			// Response already partially written; nothing to salvage.
			return
		}
		rt.reportTransportFailure(id, err)
	}
	rt.metrics.proxyErrors.Add(1)
	rt.writeError(w, http.StatusBadGateway, "cluster: all shard candidates failed: "+lastErr.Error())
}

// forward sends one attempt to one replica. done reports whether
// response bytes already reached the client (no failover possible).
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, id, engine string, body []byte) (done bool, err error) {
	st := rt.replicaByID(id)
	u := id + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.ContentLength = int64(len(body))
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		if st != nil {
			st.proxyErrors.Add(1)
		}
		return false, err
	}
	defer resp.Body.Close()

	rt.metrics.proxied.Add(1)
	if st != nil {
		st.proxied.Add(1)
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		rt.metrics.shed.Add(1)
	}
	h := w.Header()
	for k, vs := range resp.Header {
		h[k] = vs
	}
	h.Set(ShardHeader, id)
	w.WriteHeader(resp.StatusCode)
	buf := proxyBufPool.Get().(*[]byte)
	_, copyErr := io.CopyBuffer(w, resp.Body, *buf)
	proxyBufPool.Put(buf)
	if copyErr != nil {
		// Headers and some body are out; the connection is poisoned
		// but failover would duplicate bytes. Report done.
		return true, copyErr
	}
	return true, nil
}

func (rt *Router) replicaByID(id string) *replicaState {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.replicas[id]
}
