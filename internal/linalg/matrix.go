// Package linalg provides the dense linear algebra needed by GeoAlign's
// weight-learning step: column-major-free dense matrices, Householder QR,
// Cholesky factorisation, triangular solves, Lawson–Hanson non-negative
// least squares, and the simplex-constrained least-squares solver used to
// fit Eq. (15) of the paper.
//
// Everything is implemented on float64 slices with no external
// dependencies. Matrices are small in GeoAlign (|U^s| rows × |A_r|
// columns, with |A_r| typically below 16), so clarity is preferred over
// blocked kernels; the hot loops are still written to be cache-friendly.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, Data[r*Cols+c]
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative matrix dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices. All rows must share one
// length.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: ragged rows: row 0 has %d cols, row %d has %d", cols, i, len(r))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// MatrixFromColumns builds a matrix whose j-th column is cols[j]. All
// columns must share one length.
func MatrixFromColumns(cols [][]float64) (*Matrix, error) {
	if len(cols) == 0 {
		return NewMatrix(0, 0), nil
	}
	rows := len(cols[0])
	m := NewMatrix(rows, len(cols))
	for j, c := range cols {
		if len(c) != rows {
			return nil, fmt.Errorf("linalg: ragged columns: col 0 has %d rows, col %d has %d", rows, j, len(c))
		}
		for i, v := range c {
			m.Set(i, j, v)
		}
	}
	return m, nil
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float64 {
	m.boundsCheck(r, c)
	return m.Data[r*m.Cols+c]
}

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v float64) {
	m.boundsCheck(r, c)
	m.Data[r*m.Cols+c] = v
}

func (m *Matrix) boundsCheck(r, c int) {
	if r < 0 || r >= m.Rows || c < 0 || c >= m.Cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of bounds for %dx%d matrix", r, c, m.Rows, m.Cols))
	}
}

// Row returns a view (not a copy) of row r.
func (m *Matrix) Row(r int) []float64 {
	if r < 0 || r >= m.Rows {
		panic(fmt.Sprintf("linalg: row %d out of bounds for %dx%d matrix", r, m.Rows, m.Cols))
	}
	return m.Data[r*m.Cols : (r+1)*m.Cols]
}

// Col returns a copy of column c.
func (m *Matrix) Col(c int) []float64 {
	if c < 0 || c >= m.Cols {
		panic(fmt.Sprintf("linalg: col %d out of bounds for %dx%d matrix", c, m.Rows, m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := range out {
		out[i] = m.Data[i*m.Cols+c]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	n := NewMatrix(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// MulVec computes y = m·x. x must have length m.Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	y := make([]float64, m.Rows)
	m.MulVecInto(y, x)
	return y
}

// MulVecInto computes dst = m·x without allocating. dst must have
// length m.Rows and x length m.Cols; dst is overwritten.
func (m *Matrix) MulVecInto(dst, x []float64) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch: %dx%d matrix, vector of length %d", m.Rows, m.Cols, len(x)))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVecInto destination length %d != rows %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MulVecT computes y = mᵀ·x. x must have length m.Rows.
func (m *Matrix) MulVecT(x []float64) []float64 {
	y := make([]float64, m.Cols)
	m.MulVecTInto(y, x)
	return y
}

// MulVecTInto computes dst = mᵀ·x without allocating. dst must have
// length m.Cols and x length m.Rows; dst is overwritten.
func (m *Matrix) MulVecTInto(dst, x []float64) {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVecT dimension mismatch: %dx%d matrix, vector of length %d", m.Rows, m.Cols, len(x)))
	}
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVecTInto destination length %d != cols %d", len(dst), m.Cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			dst[j] += v * xi
		}
	}
}

// Mul computes m·b as a new matrix.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch: %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Row(i)
		orow := out.Row(i)
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
	return out
}

// Gram computes mᵀ·m (the Gram matrix), exploiting symmetry.
func (m *Matrix) Gram() *Matrix {
	g := NewMatrix(m.Cols, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for a, va := range row {
			if va == 0 {
				continue
			}
			grow := g.Row(a)
			for b := a; b < m.Cols; b++ {
				grow[b] += va * row[b]
			}
		}
	}
	for a := 0; a < m.Cols; a++ {
		for b := a + 1; b < m.Cols; b++ {
			g.Set(b, a, g.At(a, b))
		}
	}
	return g
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%dx%d[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			sb.WriteString("; ")
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.6g", m.At(i, j))
		}
	}
	sb.WriteByte(']')
	return sb.String()
}

// ErrSingular is returned when a factorisation or solve meets a
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v, guarding against overflow.
func Norm2(v []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Sub returns a-b as a new slice.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Sub length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Sum returns the sum of the entries of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// MaxAbs returns the largest absolute entry of v (0 for empty v).
func MaxAbs(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
