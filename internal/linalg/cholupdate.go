package linalg

import (
	"errors"
	"fmt"
	"math"
)

// This file implements incremental maintenance of the Gram-form solver
// state. A source-row revision replaces one row a_i of the design
// matrix, which perturbs the normal equations by a symmetric rank-two
// correction:
//
//	G' = G − a_i·a_iᵀ + a_i'·a_i'ᵀ
//
// The Gram matrix itself is patched exactly in O(k²). The cached lower
// Cholesky factor is maintained by a Givens rank-one update (LINPACK
// dchud) for the added row followed by a hyperbolic downdate (dchdd)
// for the removed one; a downdate that would drive the factor
// indefinite — or too long a chain of rank-one ops — triggers a full
// refactorisation from the exact G, so the factor never drifts far from
// the matrix it is supposed to factor.

// ErrDowndate is returned by CholDowndate when removing x·xᵀ would make
// the factored matrix numerically indefinite. Callers recover by
// refactorising from the exact matrix.
var ErrDowndate = errors.New("linalg: rank-one downdate leaves the matrix indefinite")

// cholRefactorEvery bounds the length of a rank-one update chain on the
// cached Cholesky factor. Each Givens/hyperbolic pass is backward
// stable, but errors accumulate across a long chain; after this many
// row updates the factor is recomputed from the exact Gram matrix.
const cholRefactorEvery = 512

// CholUpdate overwrites the lower Cholesky factor l of some SPD matrix
// M with the factor of M + x·xᵀ, using one sweep of Givens rotations
// (the LINPACK dchud recurrence). l must be a valid lower factor
// (strictly positive diagonal); x is not modified. Cost O(n²).
func CholUpdate(l *Matrix, x []float64) {
	n := l.Rows
	if l.Cols != n {
		panic(fmt.Sprintf("linalg: CholUpdate factor is %dx%d, want square", l.Rows, l.Cols))
	}
	if len(x) != n {
		panic(fmt.Sprintf("linalg: CholUpdate vector length %d != order %d", len(x), n))
	}
	w := make([]float64, n)
	copy(w, x)
	for k := 0; k < n; k++ {
		wk := w[k]
		if wk == 0 {
			continue
		}
		lkk := l.At(k, k)
		r := math.Hypot(lkk, wk)
		c := r / lkk
		s := wk / lkk
		l.Set(k, k, r)
		for i := k + 1; i < n; i++ {
			lik := (l.At(i, k) + s*w[i]) / c
			w[i] = c*w[i] - s*lik
			l.Set(i, k, lik)
		}
	}
}

// CholDowndate overwrites the lower Cholesky factor l of some SPD
// matrix M with the factor of M − x·xᵀ (the LINPACK dchdd recurrence:
// solve L·p = x, then unwind hyperbolic rotations). If the downdated
// matrix is not safely positive definite the factor is left unchanged
// and ErrDowndate is returned. x is not modified. Cost O(n²).
func CholDowndate(l *Matrix, x []float64) error {
	n := l.Rows
	if l.Cols != n {
		panic(fmt.Sprintf("linalg: CholDowndate factor is %dx%d, want square", l.Rows, l.Cols))
	}
	if len(x) != n {
		panic(fmt.Sprintf("linalg: CholDowndate vector length %d != order %d", len(x), n))
	}
	if n == 0 {
		return nil
	}
	// Forward solve L·p = x.
	p := make([]float64, n)
	for i := 0; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * p[j]
		}
		d := l.At(i, i)
		if d <= 0 {
			return ErrDowndate
		}
		p[i] = s / d
	}
	rho2 := 1 - Dot(p, p)
	// Demand a safely positive residual: a downdate that lands within a
	// few ulps of singular produces a factor too inaccurate to reuse.
	if rho2 <= float64(n)*machEps {
		return ErrDowndate
	}
	alpha := math.Sqrt(rho2)
	c := make([]float64, n)
	s := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		t := math.Hypot(alpha, p[i])
		c[i] = alpha / t
		s[i] = p[i] / t
		alpha = t
	}
	for j := 0; j < n; j++ {
		row := l.Row(j)
		xx := 0.0
		for i := j; i >= 0; i-- {
			t := c[i]*xx + s[i]*row[i]
			row[i] = c[i]*row[i] - s[i]*xx
			xx = t
		}
	}
	return nil
}

// MutableClone returns a GramSystem around the caller's writable copy
// of the design matrix, carrying over the receiver's Gram matrix (deep
// copied), ‖A‖∞ and any cached Cholesky factor so incremental updates
// start from fully primed state. a must be an element-wise identical
// copy of the receiver's design matrix — typically Clone() of it — that
// no other goroutine can see; the receiver is not modified and remains
// safe for concurrent readers. The Lipschitz cache is deliberately not
// carried: the first post-update solve recomputes it against the
// patched G.
func (gs *GramSystem) MutableClone(a *Matrix) *GramSystem {
	if a.Rows != gs.a.Rows || a.Cols != gs.a.Cols {
		panic(fmt.Sprintf("linalg: MutableClone matrix is %dx%d, want %dx%d", a.Rows, a.Cols, gs.a.Rows, gs.a.Cols))
	}
	out := &GramSystem{a: a, G: gs.G.Clone(), AInf: gs.AInf}
	gs.mu.Lock()
	if gs.cholDone {
		out.cholDone = true
		if gs.chol != nil {
			out.chol = gs.chol.Clone()
		}
	}
	gs.mu.Unlock()
	return out
}

// UpdateRow replaces row i of the design matrix with newRow and folds
// the change into the cached solver state: G absorbs the exact rank-two
// correction newRow·newRowᵀ − oldRow·oldRowᵀ in O(k²), the cached
// Cholesky factor is maintained by CholUpdate + CholDowndate (falling
// back to a full refactorisation from G when the downdate reports
// indefiniteness, when a previously non-PD system may have regained
// definiteness, or every cholRefactorEvery updates), and the Lipschitz
// cache is invalidated. ‖A‖∞ is NOT refreshed here — apply a batch of
// row updates, then call RefreshInfNorm once.
//
// Only valid on a system produced by MutableClone that no other
// goroutine is using.
func (gs *GramSystem) UpdateRow(i int, newRow []float64) {
	k := gs.a.Cols
	if len(newRow) != k {
		panic(fmt.Sprintf("linalg: UpdateRow vector length %d != cols %d", len(newRow), k))
	}
	row := gs.a.Row(i)
	old := make([]float64, k)
	copy(old, row)
	copy(row, newRow)
	for p := 0; p < k; p++ {
		gp := gs.G.Row(p)
		np, op := newRow[p], old[p]
		for q := 0; q < k; q++ {
			gp[q] += np*newRow[q] - op*old[q]
		}
	}
	gs.lipDone, gs.lip = false, 0
	if !gs.cholDone {
		return
	}
	if gs.chol == nil {
		// The previous G was not numerically PD; the revision may have
		// restored definiteness, so retry from scratch (k is small).
		gs.refactor()
		return
	}
	gs.cholUpdates++
	if gs.cholUpdates >= cholRefactorEvery {
		gs.refactor()
		return
	}
	CholUpdate(gs.chol, newRow)
	if err := CholDowndate(gs.chol, old); err != nil {
		gs.refactor()
	}
}

// RecomputeColumns recomputes the Gram rows/columns for the given
// design-matrix columns by exact dot products, after the caller has
// rewritten those columns of the design matrix in place. It is the bulk
// path for whole-column rescales (a revision that moves a column's
// max-normaliser), where a row-by-row rank-one chain would be both
// slower and less accurate. The cached Cholesky factor is refactorised
// from the new G and the Lipschitz cache invalidated.
//
// Only valid on a system produced by MutableClone that no other
// goroutine is using.
func (gs *GramSystem) RecomputeColumns(cols []int) {
	if len(cols) == 0 {
		return
	}
	a, k := gs.a, gs.a.Cols
	dots := make([]float64, k)
	for _, j := range cols {
		if j < 0 || j >= k {
			panic(fmt.Sprintf("linalg: RecomputeColumns index %d out of range [0,%d)", j, k))
		}
		for q := range dots {
			dots[q] = 0
		}
		for r := 0; r < a.Rows; r++ {
			row := a.Row(r)
			vj := row[j]
			if vj == 0 {
				continue
			}
			for q, v := range row {
				dots[q] += vj * v
			}
		}
		grow := gs.G.Row(j)
		for q, v := range dots {
			grow[q] = v
			gs.G.Set(q, j, v)
		}
	}
	gs.lipDone, gs.lip = false, 0
	if gs.cholDone {
		gs.refactor()
	}
}

// RefreshInfNorm recomputes ‖A‖∞ from the (patched) design matrix so
// solver tolerances match a from-scratch build exactly. Call once after
// a batch of UpdateRow/RecomputeColumns calls.
func (gs *GramSystem) RefreshInfNorm() {
	gs.AInf = matInfNorm(gs.a)
}

// refactor recomputes the cached Cholesky factor from the exact G,
// resetting the rank-one chain length. Mirrors CholeskyFactor's
// convention: a failed factorisation is cached as chol == nil.
func (gs *GramSystem) refactor() {
	gs.cholUpdates = 0
	if l, err := Cholesky(gs.G); err == nil {
		gs.chol = l
	} else {
		gs.chol = nil
	}
	gs.cholDone = true
}
