package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNNLSUnconstrainedInterior(t *testing.T) {
	// Solution of the unconstrained LS is positive, so NNLS must match it.
	a, _ := MatrixFromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	b := []float64{1, 2, 3}
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := LeastSquares(a, b)
	if !vecAlmostEq(x, want, 1e-8) {
		t.Errorf("x = %v, want %v", x, want)
	}
}

func TestNNLSClampsNegative(t *testing.T) {
	// Unconstrained solution has a negative component; NNLS must zero it.
	a, _ := MatrixFromRows([][]float64{{1, 1}, {1, 1.0001}})
	b := []float64{1, 0.5}
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range x {
		if v < 0 {
			t.Errorf("x[%d] = %v < 0", j, v)
		}
	}
}

func TestNNLSZeroRHS(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	x, err := NNLS(a, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, []float64{0, 0}, 1e-12) {
		t.Errorf("x = %v, want zeros", x)
	}
}

func TestNNLSNegativeOrthantRHS(t *testing.T) {
	// b in the negative orthant, A non-negative: optimum is x = 0.
	a, _ := MatrixFromRows([][]float64{{1, 2}, {2, 1}})
	x, err := NNLS(a, []float64{-1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, []float64{0, 0}, 1e-12) {
		t.Errorf("x = %v, want zeros", x)
	}
}

func TestNNLSEmptyColumns(t *testing.T) {
	x, err := NNLS(NewMatrix(3, 0), []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 0 {
		t.Errorf("x = %v, want empty", x)
	}
}

func TestNNLSDimensionMismatch(t *testing.T) {
	if _, err := NNLS(NewMatrix(3, 2), []float64{1, 2}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestNNLSCollinearColumns(t *testing.T) {
	// Duplicated column: any split between the two is optimal; result
	// must be feasible and fit as well as a single-column solve.
	a, _ := MatrixFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	b := []float64{2, 4, 6}
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range x {
		if v < 0 {
			t.Fatalf("x[%d] = %v < 0", j, v)
		}
	}
	r := Sub(a.MulVec(x), b)
	if Norm2(r) > 1e-8 {
		t.Errorf("residual %v too large for consistent system", Norm2(r))
	}
}

// nnlsKKT verifies the KKT conditions for a candidate NNLS solution:
// x >= 0, grad >= -tol on the zero set, |grad| <= tol on the support.
func nnlsKKT(a *Matrix, b, x []float64, tol float64) bool {
	r := Sub(a.MulVec(x), b)
	g := a.MulVecT(r)
	for j, v := range x {
		if v < 0 {
			return false
		}
		if v > tol {
			if math.Abs(g[j]) > tol {
				return false
			}
		} else if g[j] < -tol {
			return false
		}
	}
	return true
}

func TestNNLSKKTRandomQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 5 + rng.Intn(25)
		n := 2 + rng.Intn(6)
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64() * 3
		}
		x, err := NNLS(a, b)
		if err != nil {
			return false
		}
		scale := matInfNorm(a) * (Norm2(b) + 1)
		return nnlsKKT(a, b, x, 1e-6*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNNLSRecoversPlantedSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m, n := 40, 6
	a := NewMatrix(m, n)
	for i := range a.Data {
		a.Data[i] = math.Abs(rng.NormFloat64())
	}
	want := []float64{0.5, 0, 1.5, 0, 2, 0}
	b := a.MulVec(want)
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, want, 1e-6) {
		t.Errorf("x = %v, want %v", x, want)
	}
}
