package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func onSimplex(x []float64, tol float64) bool {
	var s float64
	for _, v := range x {
		if v < -tol {
			return false
		}
		s += v
	}
	return math.Abs(s-1) <= tol
}

func TestSimplexLSSingleColumn(t *testing.T) {
	a, _ := MatrixFromColumns([][]float64{{1, 2, 3}})
	beta, err := SimplexLeastSquares(a, []float64{9, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(beta, []float64{1}, 0) {
		t.Errorf("beta = %v, want [1]", beta)
	}
}

func TestSimplexLSNoColumns(t *testing.T) {
	if _, err := SimplexLeastSquares(NewMatrix(3, 0), []float64{1, 2, 3}); err != ErrNoColumns {
		t.Fatalf("err = %v, want ErrNoColumns", err)
	}
}

func TestSimplexLSDimensionMismatch(t *testing.T) {
	if _, err := SimplexLeastSquares(NewMatrix(3, 2), []float64{1}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestSimplexLSExactVertex(t *testing.T) {
	// b equals the second column exactly: the optimum is the vertex e2.
	cols := [][]float64{
		{1, 0, 0, 5},
		{0, 1, 0, 0},
		{0.2, 0.1, 1, 2},
	}
	a, _ := MatrixFromColumns(cols)
	beta, err := SimplexLeastSquares(a, []float64{0, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !onSimplex(beta, 1e-9) {
		t.Fatalf("beta off simplex: %v", beta)
	}
	if !vecAlmostEq(beta, []float64{0, 1, 0}, 1e-6) {
		t.Errorf("beta = %v, want e2", beta)
	}
}

func TestSimplexLSExactMixture(t *testing.T) {
	// b is a known convex combination of the columns; the solver must
	// recover it when the columns are independent.
	rng := rand.New(rand.NewSource(3))
	m, k := 30, 4
	a := NewMatrix(m, k)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	want := []float64{0.1, 0.4, 0.2, 0.3}
	b := a.MulVec(want)
	beta, err := SimplexLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !onSimplex(beta, 1e-8) {
		t.Fatalf("beta off simplex: %v", beta)
	}
	if !vecAlmostEq(beta, want, 1e-5) {
		t.Errorf("beta = %v, want %v", beta, want)
	}
}

func TestSimplexLSZeroObjective(t *testing.T) {
	// b = 0: any simplex point with minimal ‖Aβ‖ is fine, but the result
	// must at least be a valid simplex vector.
	a, _ := MatrixFromColumns([][]float64{{1, 0}, {0, 1}})
	beta, err := SimplexLeastSquares(a, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !onSimplex(beta, 1e-9) {
		t.Errorf("beta off simplex: %v", beta)
	}
}

func TestSimplexLSFeasibilityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 6 + rng.Intn(30)
		k := 2 + rng.Intn(6)
		a := NewMatrix(m, k)
		for i := range a.Data {
			a.Data[i] = rng.Float64() // attribute-like non-negative cols
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.Float64()
		}
		beta, err := SimplexLeastSquares(a, b)
		if err != nil {
			return false
		}
		return onSimplex(beta, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The active-set path and the projected-gradient path must agree on the
// objective value (the minimiser may be non-unique, the optimum is).
func TestSimplexLSAgreesWithProjectedGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		m := 10 + rng.Intn(40)
		k := 2 + rng.Intn(5)
		a := NewMatrix(m, k)
		for i := range a.Data {
			a.Data[i] = rng.Float64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.Float64()
		}
		b1, err := SimplexLeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := SimplexLeastSquaresPG(a, b, 20000, 1e-14)
		if err != nil {
			t.Fatal(err)
		}
		o1 := Norm2(Sub(a.MulVec(b1), b))
		o2 := Norm2(Sub(a.MulVec(b2), b))
		if o1 > o2+1e-5*(o2+1) {
			t.Errorf("trial %d: active-set objective %v worse than PG %v (beta %v vs %v)",
				trial, o1, o2, b1, b2)
		}
	}
}

func TestProjectSimplexBasics(t *testing.T) {
	v := []float64{0.5, 0.5}
	ProjectSimplex(v)
	if !vecAlmostEq(v, []float64{0.5, 0.5}, 1e-12) {
		t.Errorf("already-feasible point moved: %v", v)
	}
	v = []float64{2, 0}
	ProjectSimplex(v)
	if !vecAlmostEq(v, []float64{1, 0}, 1e-12) {
		t.Errorf("projection = %v, want [1 0]", v)
	}
	v = []float64{-1, -1}
	ProjectSimplex(v)
	if !onSimplex(v, 1e-12) {
		t.Errorf("projection of negative point off simplex: %v", v)
	}
}

func TestProjectSimplexIsProjectionQuick(t *testing.T) {
	// Property: result is on the simplex, and no feasible point sampled at
	// random is closer to the input.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 2
		}
		p := make([]float64, n)
		copy(p, v)
		ProjectSimplex(p)
		if !onSimplex(p, 1e-9) {
			return false
		}
		dp := Norm2(Sub(p, v))
		for trial := 0; trial < 25; trial++ {
			q := randSimplexPoint(rng, n)
			if Norm2(Sub(q, v)) < dp-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randSimplexPoint(rng *rand.Rand, n int) []float64 {
	q := make([]float64, n)
	var s float64
	for i := range q {
		q[i] = -math.Log(rng.Float64() + 1e-300)
		s += q[i]
	}
	for i := range q {
		q[i] /= s
	}
	return q
}

func TestSortDescending(t *testing.T) {
	v := []float64{3, -1, 4, 1, 5, 9, 2, 6}
	sortDescending(v)
	for i := 1; i < len(v); i++ {
		if v[i-1] < v[i] {
			t.Fatalf("not descending at %d: %v", i, v)
		}
	}
}
