package linalg

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// This file implements the normal-equations ("Gram-form") fast path for
// GeoAlign's weight learning. The Eq. 15 design matrix A (|U^s| rows ×
// |A_r| columns, ns ≫ k) is fixed per engine while the right-hand side
// b changes per attribute, so everything quadratic in ns is hoisted
// into a one-time precomputation:
//
//   - G = AᵀA, a k×k Gram matrix, built blocked and in parallel over
//     the ns rows;
//   - ‖A‖∞, which scales the solvers' tolerances;
//   - the largest eigenvalue of G (the projected-gradient Lipschitz
//     constant), computed lazily and cached.
//
// A per-attribute solve then needs only c = Aᵀb — O(ns·k), blocked and
// parallel with pooled scratch — after which the active-set and FISTA
// solvers run entirely in k-dimensional space: each Lawson–Hanson
// iteration costs one |P|³ Cholesky factorisation instead of the
// O(ns·|P|²) tall factorisation of the dense path.

// gramBlockRows is the row-block size of the blocked kernels. The
// reduction over blocks is always performed in block order, so results
// are bit-identical regardless of how many workers execute the blocks.
const gramBlockRows = 2048

// gramParallelMin is the minimum row count before the blocked kernels
// fan out to goroutines; below it the blocks run on the calling
// goroutine (with identical arithmetic).
const gramParallelMin = 8192

// GramSystem caches the normal-equations form of a fixed design matrix.
// It is immutable after construction (the lazy Lipschitz/Cholesky
// caches are internally synchronised) and safe for concurrent use.
// Incremental maintenance goes through MutableClone (cholupdate.go),
// which derives a single-owner writable copy and leaves the original
// untouched.
type GramSystem struct {
	a    *Matrix
	G    *Matrix // k×k Gram matrix AᵀA
	AInf float64 // matInfNorm(a): scales solver tolerances and μ

	mu       sync.Mutex
	lipDone  bool
	lip      float64
	cholDone bool
	chol     *Matrix // lower Cholesky factor of G; nil after cholDone ⇒ not PD

	// cholUpdates counts rank-one ops applied to chol since the last
	// full factorisation; see cholRefactorEvery in cholupdate.go.
	cholUpdates int
}

// NewGramSystem precomputes the Gram matrix and norm of a. The matrix
// is captured by reference and must not be mutated afterwards.
func NewGramSystem(a *Matrix) *GramSystem {
	return &GramSystem{a: a, G: ParallelGram(a), AInf: matInfNorm(a)}
}

// RestoreGramSystem rebuilds a GramSystem from previously computed
// parts — the design matrix, its Gram matrix G = AᵀA and ‖A‖∞ — without
// redoing the O(ns·k²) ParallelGram pass. It exists for the engine
// snapshot loader; the caller vouches that the parts belong together.
// Both matrices are captured by reference and must not be mutated.
func RestoreGramSystem(a, g *Matrix, ainf float64) *GramSystem {
	return &GramSystem{a: a, G: g, AInf: ainf}
}

// Rows returns the design matrix row count (|U^s|).
func (gs *GramSystem) Rows() int { return gs.a.Rows }

// Cols returns the design matrix column count (|A_r|).
func (gs *GramSystem) Cols() int { return gs.a.Cols }

// Gram returns the cached k×k Gram matrix AᵀA. Callers must not mutate
// it.
func (gs *GramSystem) Gram() *Matrix { return gs.G }

// Lipschitz returns the largest eigenvalue of G — the gradient
// Lipschitz constant of ½‖Aβ−b‖² — computing it on first use and
// caching it for every later call.
func (gs *GramSystem) Lipschitz() float64 {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if !gs.lipDone {
		gs.lip = powerIterSym(gs.G, 200)
		gs.lipDone = true
	}
	return gs.lip
}

// CachedLipschitz returns the Lipschitz constant if it has already been
// computed (or primed), without triggering the power iteration.
func (gs *GramSystem) CachedLipschitz() (float64, bool) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return gs.lip, gs.lipDone
}

// PrimeLipschitz installs a previously computed Lipschitz constant —
// e.g. one persisted in an engine snapshot — so later Lipschitz calls
// skip the power iteration. It has no effect if the constant was
// already computed.
func (gs *GramSystem) PrimeLipschitz(lip float64) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if !gs.lipDone {
		gs.lip = lip
		gs.lipDone = true
	}
}

// CholeskyFactor returns the lower Cholesky factor of G, computing it
// on first use and caching it (a failed factorisation — G not
// numerically positive definite, as happens for rank-deficient designs
// — is cached too). ok is false in the failure case. The factor feeds
// unconstrained k-space solves and is persisted in engine snapshots so
// restored engines skip the factorisation.
func (gs *GramSystem) CholeskyFactor() (*Matrix, bool) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if !gs.cholDone {
		if l, err := Cholesky(gs.G); err == nil {
			gs.chol = l
		}
		gs.cholDone = true
	}
	return gs.chol, gs.chol != nil
}

// CachedCholesky returns the cached Cholesky state without computing
// anything: done reports whether a factorisation was attempted, and l
// is nil when it was attempted and failed.
func (gs *GramSystem) CachedCholesky() (l *Matrix, done bool) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return gs.chol, gs.cholDone
}

// PrimeCholesky installs a previously computed Cholesky factor (nil to
// record that the factorisation was attempted and G is not positive
// definite). It has no effect if the factor was already computed.
func (gs *GramSystem) PrimeCholesky(l *Matrix) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if !gs.cholDone {
		gs.chol = l
		gs.cholDone = true
	}
}

// ApplyTInto computes dst = Aᵀb in O(ns·k), blocked over row chunks and
// fanned across goroutines for large ns. dst must have length k, b
// length ns. The block reduction is ordered, so the result does not
// depend on the worker count.
func (gs *GramSystem) ApplyTInto(dst, b []float64) {
	a := gs.a
	if len(b) != a.Rows {
		panic(fmt.Sprintf("linalg: ApplyTInto vector length %d != rows %d", len(b), a.Rows))
	}
	if len(dst) != a.Cols {
		panic(fmt.Sprintf("linalg: ApplyTInto destination length %d != cols %d", len(dst), a.Cols))
	}
	k := a.Cols
	nb := numBlocks(a.Rows)
	if nb <= 1 {
		a.MulVecTInto(dst, b)
		return
	}
	partPtr := gramScratchPool.Get().(*[]float64)
	part := *partPtr
	if cap(part) < nb*k {
		part = make([]float64, nb*k)
	}
	part = part[:nb*k]
	forEachBlock(a.Rows, func(bi, lo, hi int) {
		local := part[bi*k : (bi+1)*k]
		for j := range local {
			local[j] = 0
		}
		for i := lo; i < hi; i++ {
			xi := b[i]
			if xi == 0 {
				continue
			}
			row := a.Row(i)
			for j, v := range row {
				local[j] += v * xi
			}
		}
	})
	for j := range dst {
		dst[j] = 0
	}
	for bi := 0; bi < nb; bi++ {
		local := part[bi*k : (bi+1)*k]
		for j, v := range local {
			dst[j] += v
		}
	}
	*partPtr = part[:cap(part)]
	gramScratchPool.Put(partPtr)
}

// SimplexLS solves the Eq. 15 simplex-constrained least-squares problem
// for right-hand side b against the cached system, optionally seeding
// the active-set solver from a previous solution (warm may be nil).
func (gs *GramSystem) SimplexLS(b, warm []float64) ([]float64, error) {
	k := gs.a.Cols
	if k == 0 {
		return nil, ErrNoColumns
	}
	if len(b) != gs.a.Rows {
		return nil, fmt.Errorf("linalg: simplex LS vector length %d != rows %d", len(b), gs.a.Rows)
	}
	if k == 1 {
		return []float64{1}, nil
	}
	c := make([]float64, k)
	gs.ApplyTInto(c, b)
	return SimplexLeastSquaresGramWarm(gs.G, c, gs.AInf, Norm2(b), warm)
}

// SimplexLSPG solves the same problem with the Gram-form FISTA solver,
// reusing the cached Lipschitz constant.
func (gs *GramSystem) SimplexLSPG(b []float64, maxIter int, tol float64) ([]float64, error) {
	k := gs.a.Cols
	if k == 0 {
		return nil, ErrNoColumns
	}
	if len(b) != gs.a.Rows {
		return nil, fmt.Errorf("linalg: simplex LS vector length %d != rows %d", len(b), gs.a.Rows)
	}
	if k == 1 {
		return []float64{1}, nil
	}
	c := make([]float64, k)
	gs.ApplyTInto(c, b)
	return SimplexLeastSquaresPGGram(gs.G, c, gs.Lipschitz(), maxIter, tol)
}

var gramScratchPool = sync.Pool{New: func() any {
	s := make([]float64, 0, 256)
	return &s
}}

// numBlocks returns how many gramBlockRows-sized chunks cover rows.
func numBlocks(rows int) int {
	return (rows + gramBlockRows - 1) / gramBlockRows
}

// forEachBlock runs body(blockIndex, lo, hi) over every row block,
// in parallel when the row count warrants it. Bodies write to disjoint
// block-indexed storage, so scheduling never affects the result.
func forEachBlock(rows int, body func(bi, lo, hi int)) {
	nb := numBlocks(rows)
	workers := runtime.GOMAXPROCS(0)
	if nb <= 1 || rows < gramParallelMin || workers <= 1 {
		for bi := 0; bi < nb; bi++ {
			lo := bi * gramBlockRows
			hi := lo + gramBlockRows
			if hi > rows {
				hi = rows
			}
			body(bi, lo, hi)
		}
		return
	}
	if workers > nb {
		workers = nb
	}
	var next int64
	var mu sync.Mutex
	claim := func() int {
		mu.Lock()
		bi := int(next)
		next++
		mu.Unlock()
		return bi
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				bi := claim()
				if bi >= nb {
					return
				}
				lo := bi * gramBlockRows
				hi := lo + gramBlockRows
				if hi > rows {
					hi = rows
				}
				body(bi, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ParallelGram computes AᵀA blocked over row chunks and in parallel,
// exploiting symmetry. It matches Matrix.Gram to rounding (the block
// reduction regroups the row sums) and is deterministic for any
// GOMAXPROCS.
func ParallelGram(a *Matrix) *Matrix {
	k := a.Cols
	g := NewMatrix(k, k)
	nb := numBlocks(a.Rows)
	if nb == 0 {
		return g
	}
	part := make([]float64, nb*k*k)
	forEachBlock(a.Rows, func(bi, lo, hi int) {
		local := part[bi*k*k : (bi+1)*k*k]
		for i := lo; i < hi; i++ {
			row := a.Row(i)
			for p, vp := range row {
				if vp == 0 {
					continue
				}
				grow := local[p*k : (p+1)*k]
				for q := p; q < k; q++ {
					grow[q] += vp * row[q]
				}
			}
		}
	})
	for bi := 0; bi < nb; bi++ {
		local := part[bi*k*k : (bi+1)*k*k]
		for t, v := range local {
			g.Data[t] += v
		}
	}
	for p := 0; p < k; p++ {
		for q := p + 1; q < k; q++ {
			g.Set(q, p, g.At(p, q))
		}
	}
	return g
}

// MulATB computes AᵀB for a batch of right-hand sides: cols[o] is the
// o-th column of B (each of length a.Rows) and the result is k×len(cols)
// with column o equal to Aᵀ·cols[o]. The product is blocked over A's
// rows and runs in parallel; per-column results are bit-identical to
// ApplyTInto on the same column.
func MulATB(a *Matrix, cols [][]float64) *Matrix {
	n := len(cols)
	k := a.Cols
	out := NewMatrix(k, n)
	if n == 0 {
		return out
	}
	for o, col := range cols {
		if len(col) != a.Rows {
			panic(fmt.Sprintf("linalg: MulATB column %d has length %d, want %d", o, len(col), a.Rows))
		}
	}
	nb := numBlocks(a.Rows)
	if nb == 0 {
		return out
	}
	part := make([]float64, nb*k*n)
	forEachBlock(a.Rows, func(bi, lo, hi int) {
		local := part[bi*k*n : (bi+1)*k*n]
		for o, col := range cols {
			dst := local[o*k : (o+1)*k]
			for i := lo; i < hi; i++ {
				xi := col[i]
				if xi == 0 {
					continue
				}
				row := a.Row(i)
				for j, v := range row {
					dst[j] += v * xi
				}
			}
		}
	})
	for bi := 0; bi < nb; bi++ {
		local := part[bi*k*n : (bi+1)*k*n]
		for o := 0; o < n; o++ {
			src := local[o*k : (o+1)*k]
			for j, v := range src {
				out.Data[j*n+o] += v
			}
		}
	}
	return out
}

// GramTolerance reproduces the dense NNLS dual tolerance
// 10·ε·n·‖A‖∞·(‖b‖₂+1) for callers driving NNLSGram directly.
func GramTolerance(ainf, bnorm float64, n int) float64 {
	return 10 * machEps * float64(n) * ainf * (bnorm + 1)
}

// NNLSGram solves min ‖A·x − b‖₂ s.t. x ≥ 0 given only the normal
// equations: g = AᵀA and c = Aᵀb. It runs the same Lawson–Hanson
// active-set iteration as NNLS, but the dual vector is c − G·x (O(k²))
// and each passive-set solve is a |P|×|P| Cholesky factorisation —
// no O(ns·…) work at all. tol is the dual tolerance (see
// GramTolerance); tol <= 0 substitutes a scale-appropriate default.
//
// When a passive-set Gram block is not numerically positive definite
// the offending column is dropped, matching the dense solver's
// behaviour on rank-deficient passive sets.
func NNLSGram(g *Matrix, c []float64, tol float64) ([]float64, error) {
	return NNLSGramWarm(g, c, tol, nil)
}

// NNLSGramWarm is NNLSGram seeded with a previous solution: the passive
// set starts at warm's support and x at warm clipped to it, which makes
// repeated solves against slowly varying right-hand sides converge in
// one or two active-set iterations. warm may be nil (cold start) and is
// never mutated. The result is a KKT point of the same problem; for a
// unique optimum it is identical to the cold-start solution.
func NNLSGramWarm(g *Matrix, c []float64, tol float64, warm []float64) ([]float64, error) {
	n := g.Rows
	if g.Cols != n {
		return nil, fmt.Errorf("linalg: NNLSGram needs a square Gram matrix, got %dx%d", g.Rows, g.Cols)
	}
	if len(c) != n {
		return nil, fmt.Errorf("linalg: NNLSGram vector length %d != order %d", len(c), n)
	}
	if n == 0 {
		return nil, nil
	}
	if tol <= 0 {
		tol = GramTolerance(matInfNorm(g), Norm2(c), n)
	}

	x := make([]float64, n)
	passive := make([]bool, n)
	w := make([]float64, n)
	z := make([]float64, n)

	if len(warm) == n {
		seeded := false
		for j, v := range warm {
			if v > tol {
				passive[j] = true
				x[j] = v
				seeded = true
			}
		}
		if seeded && !gramInnerSolve(g, c, tol, passive, x, z) {
			// The warm passive set is rank deficient; restart cold.
			for j := range x {
				x[j] = 0
				passive[j] = false
			}
		}
	}

	maxOuter := 3 * n
	if maxOuter < 30 {
		maxOuter = 30
	}
	for outer := 0; outer < maxOuter; outer++ {
		// Dual vector w = c − G·x.
		for i := 0; i < n; i++ {
			s := c[i]
			row := g.Row(i)
			for j, v := range row {
				s -= v * x[j]
			}
			w[i] = s
		}
		t, wmax := -1, tol
		for j := 0; j < n; j++ {
			if !passive[j] && w[j] > wmax {
				wmax, t = w[j], j
			}
		}
		if t < 0 {
			break // KKT satisfied
		}
		passive[t] = true
		if !gramInnerSolve(g, c, tol, passive, x, z) {
			// The newly added column is linearly dependent; drop it.
			passive[t] = false
		}
	}
	return x, nil
}

// gramInnerSolve runs the Lawson–Hanson inner loop in Gram space: solve
// the unconstrained problem on the passive set and backtrack while any
// passive variable would go negative, shrinking the passive set. On
// success x is the feasible passive-set least-squares solution. It
// returns false when a passive-set solve meets a singular Gram block
// before any progress is made.
func gramInnerSolve(g *Matrix, c []float64, tol float64, passive []bool, x, z []float64) bool {
	n := len(c)
	for inner := 0; inner <= n+1; inner++ {
		if !solvePassiveGram(g, c, passive, z) {
			return false
		}
		neg := false
		alpha := math.Inf(1)
		for j := 0; j < n; j++ {
			if passive[j] && z[j] <= 0 {
				neg = true
				denom := x[j] - z[j]
				if denom != 0 {
					if a := x[j] / denom; a < alpha {
						alpha = a
					}
				}
			}
		}
		if !neg {
			for j := 0; j < n; j++ {
				if passive[j] {
					x[j] = z[j]
				} else {
					x[j] = 0
				}
			}
			return true
		}
		if math.IsInf(alpha, 1) {
			alpha = 0
		}
		for j := 0; j < n; j++ {
			if passive[j] {
				x[j] += alpha * (z[j] - x[j])
				if x[j] <= tol {
					x[j] = 0
					passive[j] = false
				}
			}
		}
	}
	return true
}

// solvePassiveGram solves G_PP·z_P = c_P for the passive index set via
// Cholesky, scattering the solution into the full-length z (zeros on
// the active set). Returns false when G_PP is not numerically positive
// definite.
func solvePassiveGram(g *Matrix, c []float64, passive []bool, z []float64) bool {
	n := len(c)
	idx := make([]int, 0, n)
	for j := 0; j < n; j++ {
		if passive[j] {
			idx = append(idx, j)
		}
	}
	for j := range z {
		z[j] = 0
	}
	if len(idx) == 0 {
		return true
	}
	p := len(idx)
	sub := NewMatrix(p, p)
	rhs := make([]float64, p)
	for r, jr := range idx {
		grow := g.Row(jr)
		srow := sub.Row(r)
		for q, jq := range idx {
			srow[q] = grow[jq]
		}
		rhs[r] = c[jr]
	}
	l, err := Cholesky(sub)
	if err != nil {
		return false
	}
	sol, err := SolveCholesky(l, rhs)
	if err != nil {
		return false
	}
	for r, jr := range idx {
		z[jr] = sol[r]
	}
	return true
}

// SimplexLeastSquaresGram solves GeoAlign's Eq. 15 weight-learning
// problem given only the normal equations of the design matrix:
// g = AᵀA, c = Aᵀb, ainf = ‖A‖∞ and bnorm = ‖b‖₂. It reproduces
// SimplexLeastSquares exactly — the same μ-weighted equality
// augmentation, here as a rank-one update G + μ²·11ᵀ and c + μ²·1, the
// same NNLS iteration, the same renormalisation and degenerate-case
// fallbacks — with per-solve cost independent of the row count.
func SimplexLeastSquaresGram(g *Matrix, c []float64, ainf, bnorm float64) ([]float64, error) {
	return SimplexLeastSquaresGramWarm(g, c, ainf, bnorm, nil)
}

// SimplexLeastSquaresGramWarm is SimplexLeastSquaresGram with an
// optional warm start (a previous β) seeding the active-set solver.
func SimplexLeastSquaresGramWarm(g *Matrix, c []float64, ainf, bnorm float64, warm []float64) ([]float64, error) {
	k := g.Rows
	if k == 0 {
		return nil, ErrNoColumns
	}
	if g.Cols != k {
		return nil, fmt.Errorf("linalg: simplex LS Gram matrix is %dx%d, want square", g.Rows, g.Cols)
	}
	if len(c) != k {
		return nil, fmt.Errorf("linalg: simplex LS Gram vector length %d != order %d", len(c), k)
	}
	if k == 1 {
		return []float64{1}, nil
	}
	if ainf == 0 {
		ainf = 1 // matInfNorm's convention for an all-zero matrix
	}

	mu := 1e4 * (ainf + bnorm + 1)
	mu2 := mu * mu
	gaug := NewMatrix(k, k)
	for i := 0; i < k; i++ {
		grow := g.Row(i)
		arow := gaug.Row(i)
		for j, v := range grow {
			arow[j] = v + mu2
		}
	}
	caug := make([]float64, k)
	for j, v := range c {
		caug[j] = v + mu2
	}
	// The dense path's dual tolerance, expressed through the augmented
	// system's norms: ‖aug‖∞ = max(‖A‖∞, k·μ) and ‖baug‖₂ = √(‖b‖²+μ²).
	augInf := float64(k) * mu
	if ainf > augInf {
		augInf = ainf
	}
	tol := GramTolerance(augInf, math.Hypot(bnorm, mu), k)

	beta, err := NNLSGramWarm(gaug, caug, tol, warm)
	if err != nil {
		return nil, err
	}
	s := Sum(beta)
	if s <= 0 || math.IsNaN(s) {
		// b is orthogonal to every feasible direction; fall back to the
		// uninformative uniform combination.
		for j := range beta {
			beta[j] = 1 / float64(k)
		}
		return beta, nil
	}
	Scale(1/s, beta)
	return beta, nil
}

// SimplexLeastSquaresPGGram is the Gram-form FISTA solver: identical
// iteration to SimplexLeastSquaresPG with the gradient computed as
// G·y − c and the Lipschitz constant supplied by the caller (pass
// lip <= 0 to estimate it by power iteration on g).
func SimplexLeastSquaresPGGram(g *Matrix, c []float64, lip float64, maxIter int, tol float64) ([]float64, error) {
	k := g.Rows
	if k == 0 {
		return nil, ErrNoColumns
	}
	if g.Cols != k {
		return nil, fmt.Errorf("linalg: simplex LS Gram matrix is %dx%d, want square", g.Rows, g.Cols)
	}
	if len(c) != k {
		return nil, fmt.Errorf("linalg: simplex LS Gram vector length %d != order %d", len(c), k)
	}
	if k == 1 {
		return []float64{1}, nil
	}
	if maxIter <= 0 {
		maxIter = 2000
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if lip <= 0 {
		lip = powerIterSym(g, 200)
	}
	if lip <= 0 {
		beta := make([]float64, k)
		for j := range beta {
			beta[j] = 1 / float64(k)
		}
		return beta, nil
	}
	step := 1 / lip

	x := make([]float64, k)
	for j := range x {
		x[j] = 1 / float64(k)
	}
	y := make([]float64, k)
	copy(y, x)
	t := 1.0
	prev := make([]float64, k)
	grad := make([]float64, k)
	proj := make([]float64, k)
	for iter := 0; iter < maxIter; iter++ {
		copy(prev, x)
		// grad = G·y − c.
		g.MulVecInto(grad, y)
		for j := range grad {
			grad[j] -= c[j]
		}
		for j := range x {
			x[j] = y[j] - step*grad[j]
		}
		projectSimplexInto(x, proj)
		tNext := (1 + math.Sqrt(1+4*t*t)) / 2
		for j := range y {
			y[j] = x[j] + (t-1)/tNext*(x[j]-prev[j])
		}
		t = tNext
		var diff float64
		for j := range x {
			diff += math.Abs(x[j] - prev[j])
		}
		if diff < tol {
			break
		}
	}
	return x, nil
}
