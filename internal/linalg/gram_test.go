package linalg

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// randTall builds a random m×k design matrix with non-negative entries
// (GeoAlign's reference columns are normalised aggregates) and a random
// right-hand side. Tall systems (m > 8k) keep the dense NNLS passive-set
// solver on its normal-equations branch, which is the regime the Gram
// solvers must reproduce to high accuracy.
func randTall(rng *rand.Rand, m, k int) (*Matrix, []float64) {
	a := NewMatrix(m, k)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return a, b
}

// lsObjective evaluates ½‖A·x − b‖² via the normal equations so it can
// be computed for both dense and Gram solutions on equal footing.
func lsObjective(a *Matrix, b, x []float64) float64 {
	r := a.MulVec(x)
	for i := range r {
		r[i] -= b[i]
	}
	n := Norm2(r)
	return 0.5 * n * n
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return d
	}
	return d / scale
}

func TestNNLSGramMatchesDenseTall(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		k := 2 + rng.Intn(7)
		m := 8*k + 1 + rng.Intn(200)
		a, b := randTall(rng, m, k)

		dense, err := NNLS(a, b)
		if err != nil {
			t.Fatalf("trial %d: dense NNLS: %v", trial, err)
		}
		g := a.Gram()
		c := a.MulVecT(b)
		tol := GramTolerance(matInfNorm(a), Norm2(b), k)
		gram, err := NNLSGram(g, c, tol)
		if err != nil {
			t.Fatalf("trial %d: NNLSGram: %v", trial, err)
		}
		scale := 1 + MaxAbs(dense)
		for j := range dense {
			if math.Abs(dense[j]-gram[j]) > 1e-9*scale {
				t.Fatalf("trial %d (m=%d k=%d): component %d differs: dense %v gram %v",
					trial, m, k, j, dense, gram)
			}
		}
	}
}

func TestNNLSGramIllConditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 25; trial++ {
		k := 3 + rng.Intn(4)
		m := 8*k + 1 + rng.Intn(100)
		a, b := randTall(rng, m, k)
		// Make two columns nearly collinear so the passive-set Gram
		// blocks are badly conditioned.
		for i := 0; i < m; i++ {
			a.Set(i, 1, a.At(i, 0)*(1+1e-7*rng.Float64()))
		}

		dense, err := NNLS(a, b)
		if err != nil {
			t.Fatalf("trial %d: dense NNLS: %v", trial, err)
		}
		tol := GramTolerance(matInfNorm(a), Norm2(b), k)
		gram, err := NNLSGram(a.Gram(), a.MulVecT(b), tol)
		if err != nil {
			t.Fatalf("trial %d: NNLSGram: %v", trial, err)
		}
		// Near-duplicate columns make individual coefficients
		// non-unique; the objective value is the well-posed quantity.
		od, og := lsObjective(a, b, dense), lsObjective(a, b, gram)
		if relDiff(od, og) > 1e-9 {
			t.Fatalf("trial %d: objective mismatch: dense %.15g gram %.15g", trial, od, og)
		}
		for j, v := range gram {
			if v < 0 {
				t.Fatalf("trial %d: gram solution infeasible at %d: %v", trial, j, gram)
			}
		}
	}
}

func TestSimplexLSGramMatchesDenseTall(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 40; trial++ {
		k := 2 + rng.Intn(7)
		m := 8*(k+1) + 1 + rng.Intn(200)
		a, b := randTall(rng, m, k)

		dense, err := SimplexLeastSquares(a, b)
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		gram, err := SimplexLeastSquaresGram(a.Gram(), a.MulVecT(b), matInfNorm(a), Norm2(b))
		if err != nil {
			t.Fatalf("trial %d: gram: %v", trial, err)
		}
		if !onSimplex(gram, 1e-12) {
			t.Fatalf("trial %d: gram solution off simplex: %v", trial, gram)
		}
		for j := range dense {
			if math.Abs(dense[j]-gram[j]) > 1e-9 {
				t.Fatalf("trial %d (m=%d k=%d): β differs at %d: dense %v gram %v",
					trial, a.Rows, k, j, dense, gram)
			}
		}
	}
}

func TestSimplexLSGramIllConditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 25; trial++ {
		k := 3 + rng.Intn(4)
		m := 8*(k+1) + 1 + rng.Intn(100)
		a, b := randTall(rng, m, k)
		for i := 0; i < m; i++ {
			a.Set(i, 2, a.At(i, 1)*(1+1e-8*rng.Float64()))
		}

		dense, err := SimplexLeastSquares(a, b)
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		gram, err := SimplexLeastSquaresGram(a.Gram(), a.MulVecT(b), matInfNorm(a), Norm2(b))
		if err != nil {
			t.Fatalf("trial %d: gram: %v", trial, err)
		}
		od, og := lsObjective(a, b, dense), lsObjective(a, b, gram)
		if relDiff(od, og) > 1e-9 {
			t.Fatalf("trial %d: objective mismatch: dense %.15g gram %.15g (β dense %v gram %v)",
				trial, od, og, dense, gram)
		}
		if !onSimplex(gram, 1e-12) {
			t.Fatalf("trial %d: gram solution off simplex: %v", trial, gram)
		}
	}
}

func TestSimplexLSGramWarmMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 30; trial++ {
		k := 2 + rng.Intn(7)
		m := 8*(k+1) + 1 + rng.Intn(150)
		a, b := randTall(rng, m, k)
		g := a.Gram()
		c := a.MulVecT(b)
		ainf, bnorm := matInfNorm(a), Norm2(b)

		cold, err := SimplexLeastSquaresGram(g, c, ainf, bnorm)
		if err != nil {
			t.Fatalf("trial %d: cold: %v", trial, err)
		}
		// Warm-start from the cold solution itself, from a perturbed
		// copy, and from a deliberately wrong seed: all must land on
		// the same optimum.
		seeds := [][]float64{cold, make([]float64, k), make([]float64, k)}
		copy(seeds[1], cold)
		for j := range seeds[1] {
			seeds[1][j] = math.Max(0, seeds[1][j]+0.05*rng.NormFloat64())
		}
		for j := range seeds[2] {
			seeds[2][j] = rng.Float64()
		}
		for si, seed := range seeds {
			warm, err := SimplexLeastSquaresGramWarm(g, c, ainf, bnorm, seed)
			if err != nil {
				t.Fatalf("trial %d seed %d: warm: %v", trial, si, err)
			}
			for j := range cold {
				if math.Abs(cold[j]-warm[j]) > 1e-9 {
					t.Fatalf("trial %d seed %d: warm diverges: cold %v warm %v", trial, si, cold, warm)
				}
			}
		}
	}
}

func TestGramDegenerateCases(t *testing.T) {
	mk := func(rows ...[]float64) *Matrix {
		m, err := MatrixFromRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cases := []struct {
		name string
		a    *Matrix
		b    []float64
	}{
		{"k=1", mk([]float64{2}, []float64{3}, []float64{1}), []float64{1, 2, 0.5}},
		{"zero b", mk([]float64{1, 2}, []float64{3, 4}, []float64{5, 6}), []float64{0, 0, 0}},
		{"b orthogonal to cone", mk([]float64{1, 0}, []float64{0, 1}, []float64{0, 0}), []float64{-1, -1, 0}},
		{"duplicate columns", mk([]float64{1, 1}, []float64{2, 2}, []float64{3, 3}), []float64{1, 2, 3}},
		{"zero matrix", mk([]float64{0, 0}, []float64{0, 0}, []float64{0, 0}), []float64{1, 2, 3}},
		{"rank deficient", mk([]float64{1, 2, 3}, []float64{2, 4, 6}, []float64{3, 6, 9}, []float64{1, 2, 3}), []float64{1, 1, 1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dense, err := SimplexLeastSquares(tc.a, tc.b)
			if err != nil {
				t.Fatalf("dense: %v", err)
			}
			gram, err := SimplexLeastSquaresGram(tc.a.Gram(), tc.a.MulVecT(tc.b), matInfNorm(tc.a), Norm2(tc.b))
			if err != nil {
				t.Fatalf("gram: %v", err)
			}
			if len(gram) != len(dense) {
				t.Fatalf("length mismatch: dense %v gram %v", dense, gram)
			}
			od, og := lsObjective(tc.a, tc.b, dense), lsObjective(tc.a, tc.b, gram)
			if relDiff(od, og) > 1e-9 {
				t.Fatalf("objective mismatch: dense %.15g (%v) gram %.15g (%v)", od, dense, og, gram)
			}
			if !onSimplex(gram, 1e-12) {
				t.Fatalf("gram solution off simplex: %v", gram)
			}
		})
	}

	if _, err := SimplexLeastSquaresGram(NewMatrix(0, 0), nil, 0, 0); err != ErrNoColumns {
		t.Fatalf("k=0 should return ErrNoColumns, got %v", err)
	}
	if got, err := SimplexLeastSquaresGram(NewMatrix(1, 1), []float64{5}, 1, 1); err != nil || len(got) != 1 || got[0] != 1 {
		t.Fatalf("k=1 fast path: got %v, %v", got, err)
	}
	if x, err := NNLSGram(NewMatrix(0, 0), nil, 0); err != nil || x != nil {
		t.Fatalf("empty NNLSGram: got %v, %v", x, err)
	}
}

func TestSimplexLSPGGramMatchesPG(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(6)
		m := 20 + rng.Intn(100)
		a, b := randTall(rng, m, k)

		pg, err := SimplexLeastSquaresPG(a, b, 4000, 1e-13)
		if err != nil {
			t.Fatalf("trial %d: PG: %v", trial, err)
		}
		g := a.Gram()
		c := a.MulVecT(b)
		pgg, err := SimplexLeastSquaresPGGram(g, c, 0, 4000, 1e-13)
		if err != nil {
			t.Fatalf("trial %d: PGGram: %v", trial, err)
		}
		// Both run the identical FISTA recursion; the gradient is
		// algebraically equal (Aᵀ(Ay−b) vs Gy−c) but rounded
		// differently, so compare objective values.
		op, og := lsObjective(a, b, pg), lsObjective(a, b, pgg)
		if relDiff(op, og) > 1e-9 {
			t.Fatalf("trial %d: objective mismatch: PG %.15g PGGram %.15g", trial, op, og)
		}
		if !onSimplex(pgg, 1e-9) {
			t.Fatalf("trial %d: PGGram off simplex: %v", trial, pgg)
		}
	}
}

func TestParallelGramMatchesGram(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for _, m := range []int{0, 1, 100, gramBlockRows, gramBlockRows + 1, 3*gramBlockRows + 17, gramParallelMin + 999} {
		k := 1 + rng.Intn(8)
		a := NewMatrix(m, k)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		want := a.Gram()
		got := ParallelGram(a)
		if got.Rows != k || got.Cols != k {
			t.Fatalf("m=%d: ParallelGram shape %dx%d", m, got.Rows, got.Cols)
		}
		for i := range want.Data {
			// The block reduction regroups the row sums, so allow
			// rounding-level divergence from the single-pass Gram.
			if relDiff(want.Data[i], got.Data[i]) > 1e-12 {
				t.Fatalf("m=%d k=%d: entry %d: serial %v parallel %v", m, k, i, want.Data[i], got.Data[i])
			}
		}
	}
}

func TestParallelGramDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	a := NewMatrix(gramParallelMin+4321, 5)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	first := ParallelGram(a)
	for rep := 0; rep < 5; rep++ {
		again := ParallelGram(a)
		for i := range first.Data {
			if first.Data[i] != again.Data[i] {
				t.Fatalf("rep %d: ParallelGram not deterministic at %d", rep, i)
			}
		}
	}
}

func TestApplyTIntoMatchesMulVecT(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, m := range []int{1, 57, gramBlockRows, gramBlockRows + 1, 2*gramBlockRows + 300, gramParallelMin + 123} {
		k := 1 + rng.Intn(7)
		a := NewMatrix(m, k)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
			if rng.Intn(10) == 0 {
				a.Data[i] = 0
			}
		}
		gs := NewGramSystem(a)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
			if rng.Intn(8) == 0 {
				b[i] = 0
			}
		}
		want := a.MulVecT(b)
		got := make([]float64, k)
		gs.ApplyTInto(got, b)
		// The blocked reduction regroups sums; rounding-level agreement.
		for j := range want {
			if relDiff(want[j], got[j]) > 1e-12 {
				t.Fatalf("m=%d: component %d: MulVecT %v ApplyTInto %v", m, j, want[j], got[j])
			}
		}
		// Repeated calls through the pool must be bit-identical.
		again := make([]float64, k)
		gs.ApplyTInto(again, b)
		for j := range got {
			if got[j] != again[j] {
				t.Fatalf("m=%d: ApplyTInto not deterministic at %d", m, j)
			}
		}
	}
}

func TestMulATBMatchesApplyTInto(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for _, m := range []int{1, 64, gramBlockRows + 11, gramParallelMin + 77} {
		k := 1 + rng.Intn(6)
		n := 1 + rng.Intn(9)
		a := NewMatrix(m, k)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		gs := NewGramSystem(a)
		cols := make([][]float64, n)
		for o := range cols {
			col := make([]float64, m)
			for i := range col {
				col[i] = rng.NormFloat64()
				if rng.Intn(6) == 0 {
					col[i] = 0
				}
			}
			cols[o] = col
		}
		prod := MulATB(a, cols)
		if prod.Rows != k || prod.Cols != n {
			t.Fatalf("MulATB shape %dx%d, want %dx%d", prod.Rows, prod.Cols, k, n)
		}
		single := make([]float64, k)
		for o := 0; o < n; o++ {
			gs.ApplyTInto(single, cols[o])
			for j := 0; j < k; j++ {
				// Bit-identical: MulATB runs the same block
				// decomposition and per-row arithmetic per column.
				if prod.At(j, o) != single[j] {
					t.Fatalf("m=%d col %d row %d: MulATB %v ApplyTInto %v",
						m, o, j, prod.At(j, o), single[j])
				}
			}
		}
	}
	if out := MulATB(NewMatrix(3, 2), nil); out.Rows != 2 || out.Cols != 0 {
		t.Fatalf("MulATB with no columns: got %dx%d", out.Rows, out.Cols)
	}
}

func TestGramSystemSimplexLS(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(6)
		m := 8*(k+1) + 1 + rng.Intn(300)
		a, b := randTall(rng, m, k)
		gs := NewGramSystem(a)
		if gs.Rows() != m || gs.Cols() != k {
			t.Fatalf("GramSystem dims %dx%d, want %dx%d", gs.Rows(), gs.Cols(), m, k)
		}

		dense, err := SimplexLeastSquares(a, b)
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		fast, err := gs.SimplexLS(b, nil)
		if err != nil {
			t.Fatalf("trial %d: SimplexLS: %v", trial, err)
		}
		for j := range dense {
			if math.Abs(dense[j]-fast[j]) > 1e-9 {
				t.Fatalf("trial %d: β differs: dense %v fast %v", trial, dense, fast)
			}
		}
		warm, err := gs.SimplexLS(b, fast)
		if err != nil {
			t.Fatalf("trial %d: warm SimplexLS: %v", trial, err)
		}
		for j := range fast {
			if math.Abs(fast[j]-warm[j]) > 1e-9 {
				t.Fatalf("trial %d: warm differs: %v vs %v", trial, fast, warm)
			}
		}

		pg, err := gs.SimplexLSPG(b, 4000, 1e-13)
		if err != nil {
			t.Fatalf("trial %d: SimplexLSPG: %v", trial, err)
		}
		od, og := lsObjective(a, b, dense), lsObjective(a, b, pg)
		// FISTA converges to the same optimum but stops on a step-size
		// criterion; allow a looser objective agreement.
		if relDiff(od, og) > 1e-6 {
			t.Fatalf("trial %d: PG objective %.15g vs dense %.15g", trial, og, od)
		}
	}

	gs := NewGramSystem(NewMatrix(3, 0))
	if _, err := gs.SimplexLS([]float64{1, 2, 3}, nil); err != ErrNoColumns {
		t.Fatalf("k=0 SimplexLS: want ErrNoColumns, got %v", err)
	}
	if _, err := gs.SimplexLSPG([]float64{1, 2, 3}, 0, 0); err != ErrNoColumns {
		t.Fatalf("k=0 SimplexLSPG: want ErrNoColumns, got %v", err)
	}
	gs1 := NewGramSystem(NewMatrix(4, 1))
	if got, err := gs1.SimplexLS([]float64{1, 2, 3, 4}, nil); err != nil || len(got) != 1 || got[0] != 1 {
		t.Fatalf("k=1 SimplexLS: got %v, %v", got, err)
	}
	if _, err := gs1.SimplexLS([]float64{1}, nil); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestGramSystemLipschitzCached(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	a := NewMatrix(200, 4)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	gs := NewGramSystem(a)
	want := powerIterSym(a.Gram(), 200)
	got := gs.Lipschitz()
	if relDiff(want, got) > 1e-12 {
		t.Fatalf("Lipschitz: want %v got %v", want, got)
	}
	// Concurrent first use must still produce one consistent value.
	gs2 := NewGramSystem(a)
	var wg sync.WaitGroup
	vals := make([]float64, 8)
	for i := range vals {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i] = gs2.Lipschitz()
		}(i)
	}
	wg.Wait()
	for _, v := range vals {
		if v != got {
			t.Fatalf("concurrent Lipschitz values diverge: %v vs %v", vals, got)
		}
	}
}

func TestProjectSimplexConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	inputs := make([][]float64, 64)
	want := make([][]float64, len(inputs))
	for i := range inputs {
		n := 1 + rng.Intn(40)
		v := make([]float64, n)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		inputs[i] = v
		w := make([]float64, n)
		copy(w, v)
		scratch := make([]float64, n)
		projectSimplexInto(w, scratch)
		want[i] = w
	}
	var wg sync.WaitGroup
	for rep := 0; rep < 8; rep++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, v := range inputs {
				got := make([]float64, len(v))
				copy(got, v)
				ProjectSimplex(got)
				for j := range got {
					if got[j] != want[i][j] {
						t.Errorf("input %d: pooled projection differs at %d", i, j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
