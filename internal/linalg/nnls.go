package linalg

import (
	"fmt"
	"math"
)

// NNLS solves the non-negative least squares problem
//
//	min ‖A·x − b‖₂  subject to  x ≥ 0
//
// with the Lawson–Hanson active-set algorithm (Solving Least Squares
// Problems, 1974, ch. 23). The returned x is a Karush–Kuhn–Tucker point:
// x ≥ 0 and the gradient Aᵀ(Ax−b) is ≥ 0 on the active (zero) set and ≈ 0
// on the passive set.
func NNLS(a *Matrix, b []float64) ([]float64, error) {
	m, n := a.Rows, a.Cols
	if len(b) != m {
		return nil, fmt.Errorf("linalg: NNLS vector length %d != rows %d", len(b), m)
	}
	if n == 0 {
		return nil, nil
	}

	x := make([]float64, n)
	passive := make([]bool, n)
	resid := make([]float64, m)
	copy(resid, b) // residual b - A·x with x = 0

	// Tolerance scaled to the problem: entries of w below tol count as
	// non-positive.
	tol := 10 * machEps * float64(n) * matInfNorm(a) * (Norm2(b) + 1)

	maxOuter := 3 * n
	if maxOuter < 30 {
		maxOuter = 30
	}
	for outer := 0; outer < maxOuter; outer++ {
		// Dual vector w = Aᵀ·resid.
		w := a.MulVecT(resid)
		// Pick the most positive w among active variables.
		t, wmax := -1, tol
		for j := 0; j < n; j++ {
			if !passive[j] && w[j] > wmax {
				wmax, t = w[j], j
			}
		}
		if t < 0 {
			break // KKT satisfied
		}
		passive[t] = true

		// Inner loop: solve the unconstrained LS on the passive set and
		// backtrack while any passive variable would go negative.
		for inner := 0; inner <= n+1; inner++ {
			z, err := solvePassive(a, b, passive)
			if err != nil {
				// The newly added column is linearly dependent; drop it
				// and stop considering it a candidate this round.
				passive[t] = false
				break
			}
			neg := false
			alpha := math.Inf(1)
			for j := 0; j < n; j++ {
				if passive[j] && z[j] <= 0 {
					neg = true
					denom := x[j] - z[j]
					if denom != 0 {
						if a := x[j] / denom; a < alpha {
							alpha = a
						}
					}
				}
			}
			if !neg {
				for j := 0; j < n; j++ {
					if passive[j] {
						x[j] = z[j]
					} else {
						x[j] = 0
					}
				}
				break
			}
			if math.IsInf(alpha, 1) {
				alpha = 0
			}
			for j := 0; j < n; j++ {
				if passive[j] {
					x[j] += alpha * (z[j] - x[j])
					if x[j] <= tol {
						x[j] = 0
						passive[j] = false
					}
				}
			}
		}
		// Refresh the residual.
		ax := a.MulVec(x)
		for i := range resid {
			resid[i] = b[i] - ax[i]
		}
	}
	return x, nil
}

const machEps = 2.220446049250313e-16

func matInfNorm(a *Matrix) float64 {
	var mx float64
	for i := 0; i < a.Rows; i++ {
		var s float64
		for _, v := range a.Row(i) {
			s += math.Abs(v)
		}
		if s > mx {
			mx = s
		}
	}
	if mx == 0 {
		return 1
	}
	return mx
}

// solvePassive solves the unconstrained least squares restricted to the
// passive columns, returning a full-length vector with zeros elsewhere.
func solvePassive(a *Matrix, b []float64, passive []bool) ([]float64, error) {
	n := a.Cols
	idx := make([]int, 0, n)
	for j := 0; j < n; j++ {
		if passive[j] {
			idx = append(idx, j)
		}
	}
	if len(idx) == 0 {
		return make([]float64, n), nil
	}
	sub := NewMatrix(a.Rows, len(idx))
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		srow := sub.Row(i)
		for k, j := range idx {
			srow[k] = row[j]
		}
	}
	// Tall-skinny systems (many source units, few references) solve far
	// faster through the k×k normal equations; fall back to Householder
	// QR when the Gram matrix is numerically rank deficient.
	var zs []float64
	var err error
	if sub.Rows > 8*sub.Cols {
		zs, err = SolveSPD(sub.Gram(), sub.MulVecT(b))
	}
	if zs == nil || err != nil {
		zs, err = LeastSquares(sub, b)
		if err != nil {
			return nil, err
		}
	}
	z := make([]float64, n)
	for k, j := range idx {
		z[j] = zs[k]
	}
	return z, nil
}
