package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randSPD builds a well-conditioned SPD matrix AᵀA + d·I together with
// its Cholesky factor.
func randSPD(t *testing.T, rng *rand.Rand, n int, d float64) (*Matrix, *Matrix) {
	t.Helper()
	a := NewMatrix(3*n+4, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	m := a.Gram()
	for i := 0; i < n; i++ {
		m.Set(i, i, m.At(i, i)+d)
	}
	l, err := Cholesky(m)
	if err != nil {
		t.Fatalf("Cholesky of SPD seed: %v", err)
	}
	return m, l
}

// maxAbsDiff returns max |a−b| over all elements.
func maxAbsDiff(a, b *Matrix) float64 {
	var mx float64
	for i, v := range a.Data {
		if d := math.Abs(v - b.Data[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// addOuter returns m + s·x·xᵀ as a new matrix.
func addOuter(m *Matrix, x []float64, s float64) *Matrix {
	out := m.Clone()
	for i := range x {
		row := out.Row(i)
		for j := range x {
			row[j] += s * x[i] * x[j]
		}
	}
	return out
}

func TestCholUpdateMatchesRefactorisation(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		m, l := randSPD(t, rng, n, 0.5)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		CholUpdate(l, x)
		want, err := Cholesky(addOuter(m, x, 1))
		if err != nil {
			t.Fatalf("trial %d: refactorisation: %v", trial, err)
		}
		if d := maxAbsDiff(l, want); d > 1e-10*(1+matInfNorm(want)) {
			t.Fatalf("trial %d: updated factor differs from refactorisation by %g", trial, d)
		}
	}
}

func TestCholDowndateMatchesRefactorisation(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		m, _ := randSPD(t, rng, n, 0.5)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		up := addOuter(m, x, 1)
		l, err := Cholesky(up)
		if err != nil {
			t.Fatalf("trial %d: factor of updated matrix: %v", trial, err)
		}
		if err := CholDowndate(l, x); err != nil {
			t.Fatalf("trial %d: downdate of a safely PD matrix: %v", trial, err)
		}
		want, err := Cholesky(m)
		if err != nil {
			t.Fatalf("trial %d: refactorisation: %v", trial, err)
		}
		if d := maxAbsDiff(l, want); d > 1e-9*(1+matInfNorm(want)) {
			t.Fatalf("trial %d: downdated factor differs from refactorisation by %g", trial, d)
		}
	}
}

func TestCholDowndateToSingularFails(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	n := 5
	// M = x·xᵀ + tiny·I: removing x·xᵀ leaves a matrix that is singular
	// to working precision, so the downdate must refuse and leave the
	// factor untouched.
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 + rng.Float64()
	}
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, x[i]*x[j])
		}
		m.Set(i, i, m.At(i, i)+1e-14)
	}
	l, err := Cholesky(m)
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	before := l.Clone()
	if err := CholDowndate(l, x); !errors.Is(err, ErrDowndate) {
		t.Fatalf("downdate to singular: got err %v, want ErrDowndate", err)
	}
	if d := maxAbsDiff(l, before); d != 0 {
		t.Fatalf("failed downdate modified the factor (max diff %g)", d)
	}
}

func TestCholUpdateRoundTripChain(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	n := 8
	m, l := randSPD(t, rng, n, 1)
	// A long alternating chain of updates and matching downdates must
	// return to (numerically) the starting factor.
	for rep := 0; rep < 200; rep++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		CholUpdate(l, x)
		if err := CholDowndate(l, x); err != nil {
			t.Fatalf("rep %d: downdate: %v", rep, err)
		}
	}
	want, err := Cholesky(m)
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	if d := maxAbsDiff(l, want); d > 1e-8*(1+matInfNorm(want)) {
		t.Fatalf("round-trip chain drifted from the exact factor by %g", d)
	}
}

// applyRandomRowUpdates drives k random UpdateRow calls against a
// mutable clone of gs, returning the clone and the patched dense
// matrix. makeRow produces the replacement row for a given trial.
func applyRandomRowUpdates(gs *GramSystem, a *Matrix, rng *rand.Rand, updates int, makeRow func(i int) []float64) (*GramSystem, *Matrix) {
	patched := a.Clone()
	mut := gs.MutableClone(patched)
	for u := 0; u < updates; u++ {
		i := rng.Intn(a.Rows)
		mut.UpdateRow(i, makeRow(i))
	}
	mut.RefreshInfNorm()
	return mut, patched
}

// TestGramSolversAfterRowUpdates is the rebuild-equivalence property
// test for the solver layer: after k random rank-one up/downdates the
// warm NNLS and simplex solvers on the maintained system must agree
// with a cold solve on a GramSystem rebuilt from the patched dense
// matrix. Covers well- and ill-conditioned designs; the ill-conditioned
// case deliberately drives near-parallel columns so some downdates land
// on the refactorisation fallback.
func TestGramSolversAfterRowUpdates(t *testing.T) {
	for _, tc := range []struct {
		name string
		cond string
	}{
		{"well-conditioned", "well"},
		{"ill-conditioned", "ill"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(75))
			for trial := 0; trial < 30; trial++ {
				k := 2 + rng.Intn(6)
				m := 8*k + 1 + rng.Intn(120)
				a := NewMatrix(m, k)
				for i := 0; i < m; i++ {
					row := a.Row(i)
					base := rng.Float64()
					for j := range row {
						if tc.cond == "ill" {
							// Columns are tiny perturbations of one
							// shared column: condition number blows up.
							row[j] = base + 1e-8*rng.Float64()
						} else {
							row[j] = rng.Float64()
						}
					}
				}
				gs := NewGramSystem(a)
				gs.CholeskyFactor() // prime so updates exercise the factor path
				updates := 1 + rng.Intn(2*k)
				mut, patched := applyRandomRowUpdates(gs, a, rng, updates, func(int) []float64 {
					row := make([]float64, k)
					for j := range row {
						row[j] = rng.Float64()
					}
					return row
				})

				cold := NewGramSystem(patched)
				b := make([]float64, m)
				for i := range b {
					b[i] = rng.NormFloat64()
				}

				// Maintained state must match the rebuilt state exactly
				// up to float accumulation: compare the Gram matrices.
				if d := maxAbsDiff(mut.Gram(), cold.Gram()); d > 1e-9*(1+matInfNorm(cold.Gram())) {
					t.Fatalf("trial %d: maintained Gram differs from rebuild by %g", trial, d)
				}
				if mut.AInf != cold.AInf {
					t.Fatalf("trial %d: maintained ‖A‖∞ %g != rebuilt %g", trial, mut.AInf, cold.AInf)
				}

				c := make([]float64, k)
				mut.ApplyTInto(c, b)
				tol := GramTolerance(mut.AInf, Norm2(b), k)
				warm := make([]float64, k)
				for j := range warm {
					warm[j] = 1 / float64(k)
				}
				got, err := NNLSGramWarm(mut.Gram(), c, tol, warm)
				if err != nil {
					t.Fatalf("trial %d: NNLSGramWarm: %v", trial, err)
				}
				want, err := NNLSGram(cold.Gram(), c, tol)
				if err != nil {
					t.Fatalf("trial %d: cold NNLSGram: %v", trial, err)
				}
				// Both are KKT points of (numerically) the same problem:
				// compare objectives rather than coordinates, which can
				// differ on rank-deficient designs.
				og := lsObjective(patched, b, got)
				ow := lsObjective(patched, b, want)
				if relDiff(og, ow) > 1e-7 {
					t.Fatalf("trial %d: NNLS objective %g (maintained) vs %g (cold)", trial, og, ow)
				}

				gotS, err := mut.SimplexLS(b, warm)
				if err != nil {
					t.Fatalf("trial %d: maintained SimplexLS: %v", trial, err)
				}
				wantS, err := cold.SimplexLS(b, nil)
				if err != nil {
					t.Fatalf("trial %d: cold SimplexLS: %v", trial, err)
				}
				os, osC := lsObjective(patched, b, gotS), lsObjective(patched, b, wantS)
				if relDiff(os, osC) > 1e-7 {
					t.Fatalf("trial %d: simplex objective %g (maintained) vs %g (cold)", trial, os, osC)
				}
			}
		})
	}
}

// TestUpdateRowDowndateFallback drives a maintained system into a
// downdate that must trip the refactorisation fallback — the design
// collapses to (numerically) rank one — and checks the factor cache
// still matches a from-scratch factorisation afterwards.
func TestUpdateRowDowndateFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	k := 4
	m := 40
	a := NewMatrix(m, k)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	gs := NewGramSystem(a)
	if _, ok := gs.CholeskyFactor(); !ok {
		t.Fatal("seed system should be positive definite")
	}
	patched := a.Clone()
	mut := gs.MutableClone(patched)
	// Zero out every row but the first: G becomes rank one, so the
	// factor chain must hit CholDowndate failures and refactorise.
	zero := make([]float64, k)
	for i := 1; i < m; i++ {
		mut.UpdateRow(i, zero)
	}
	mut.RefreshInfNorm()
	l, ok := mut.CachedCholesky()
	if !ok {
		t.Fatal("factor cache should remain primed through the fallback")
	}
	cold := NewGramSystem(patched)
	coldL, coldOK := cold.CholeskyFactor()
	if coldOK != (l != nil) {
		t.Fatalf("maintained PD state %v != rebuilt %v", l != nil, coldOK)
	}
	if l != nil && coldL != nil {
		if d := maxAbsDiff(l, coldL); d > 1e-9*(1+matInfNorm(coldL)) {
			t.Fatalf("maintained factor differs from rebuild by %g", d)
		}
	}
	// Restoring a full-rank design must bring the factor back.
	for i := 1; i < m; i++ {
		row := make([]float64, k)
		for j := range row {
			row[j] = rng.Float64()
		}
		mut.UpdateRow(i, row)
	}
	mut.RefreshInfNorm()
	if l, ok := mut.CachedCholesky(); !ok || l == nil {
		t.Fatal("factor should be positive definite again after restoring rank")
	}
}

func TestRecomputeColumnsMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		k := 3 + rng.Intn(5)
		m := 50 + rng.Intn(100)
		a := NewMatrix(m, k)
		for i := range a.Data {
			a.Data[i] = rng.Float64()
		}
		gs := NewGramSystem(a)
		gs.CholeskyFactor()
		patched := a.Clone()
		mut := gs.MutableClone(patched)
		// Rescale two whole columns in place (the column-max-moved
		// case), then ask the system to recompute them.
		cols := []int{rng.Intn(k), rng.Intn(k)}
		for _, j := range cols {
			s := 0.25 + rng.Float64()
			for i := 0; i < m; i++ {
				patched.Set(i, j, patched.At(i, j)*s)
			}
		}
		mut.RecomputeColumns(cols)
		mut.RefreshInfNorm()
		cold := NewGramSystem(patched)
		if d := maxAbsDiff(mut.Gram(), cold.Gram()); d > 1e-10*(1+matInfNorm(cold.Gram())) {
			t.Fatalf("trial %d: recomputed Gram differs from rebuild by %g", trial, d)
		}
		if mut.AInf != cold.AInf {
			t.Fatalf("trial %d: ‖A‖∞ %g != %g", trial, mut.AInf, cold.AInf)
		}
		l, ok := mut.CachedCholesky()
		if !ok || l == nil {
			t.Fatalf("trial %d: factor cache lost", trial)
		}
		coldL, coldOK := cold.CholeskyFactor()
		if !coldOK {
			t.Fatalf("trial %d: rebuilt system not PD", trial)
		}
		if d := maxAbsDiff(l, coldL); d > 1e-9*(1+matInfNorm(coldL)) {
			t.Fatalf("trial %d: factor differs from rebuild by %g", trial, d)
		}
	}
}

func TestMutableCloneLeavesParentUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	a := NewMatrix(30, 4)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	gs := NewGramSystem(a)
	gs.CholeskyFactor()
	gBefore := gs.Gram().Clone()
	ainfBefore := gs.AInf
	lBefore, _ := gs.CachedCholesky()
	lSnap := lBefore.Clone()

	mut := gs.MutableClone(a.Clone())
	for u := 0; u < 10; u++ {
		row := make([]float64, 4)
		for j := range row {
			row[j] = rng.Float64() * 3
		}
		mut.UpdateRow(rng.Intn(30), row)
	}
	mut.RefreshInfNorm()

	if d := maxAbsDiff(gs.Gram(), gBefore); d != 0 {
		t.Fatalf("parent Gram mutated (max diff %g)", d)
	}
	if gs.AInf != ainfBefore {
		t.Fatalf("parent ‖A‖∞ mutated: %g != %g", gs.AInf, ainfBefore)
	}
	lAfter, _ := gs.CachedCholesky()
	if d := maxAbsDiff(lAfter, lSnap); d != 0 {
		t.Fatalf("parent Cholesky factor mutated (max diff %g)", d)
	}
}
