package linalg

import (
	"math/rand"
	"testing"
)

func benchProblem(m, k int) (*Matrix, []float64) {
	rng := rand.New(rand.NewSource(7))
	a := NewMatrix(m, k)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.Float64()
	}
	return a, b
}

// BenchmarkSimplexLSSolverAblation compares GeoAlign's two weight
// solvers — the Lawson–Hanson active set (default) and the projected
// gradient — at the paper's full US problem shape (30238 source units,
// 7 references).
func BenchmarkSimplexLSSolverAblation(b *testing.B) {
	a, rhs := benchProblem(30238, 7)
	b.Run("active-set", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SimplexLeastSquares(a, rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("projected-gradient", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SimplexLeastSquaresPG(a, rhs, 500, 1e-10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gram-active-set", func(b *testing.B) {
		gs := NewGramSystem(a)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := gs.SimplexLS(rhs, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gram-projected-gradient", func(b *testing.B) {
		gs := NewGramSystem(a)
		gs.Lipschitz()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := gs.SimplexLSPG(rhs, 500, 1e-10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkNNLS(b *testing.B) {
	a, rhs := benchProblem(5000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NNLS(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQRFactorSolve(b *testing.B) {
	a, rhs := benchProblem(2000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeastSquares(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGram(b *testing.B) {
	a, _ := benchProblem(30238, 7)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = a.Gram()
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = ParallelGram(a)
		}
	})
}
