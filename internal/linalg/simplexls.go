package linalg

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrNoColumns is returned by SimplexLeastSquares when A has no columns:
// there is no β to learn.
var ErrNoColumns = errors.New("linalg: simplex least squares needs at least one column")

// SimplexLeastSquares solves the weight-learning problem of GeoAlign
// (Eq. 15 of the paper):
//
//	min_β ½‖A·β − b‖₂²  subject to  Σ_k β_k = 1,  β_k ≥ 0
//
// i.e. least squares over the probability simplex. The equality
// constraint is enforced by augmenting the system with a heavily
// weighted row μ·1ᵀβ = μ and running Lawson–Hanson NNLS, after which β
// is renormalised so the constraint holds exactly. μ is chosen large
// relative to ‖A‖ so the augmentation perturbs the fit negligibly.
//
// Degenerate inputs are handled conservatively: a single column yields
// β = [1]; if NNLS returns the zero vector (b orthogonal to the cone),
// the uniform weights 1/k are returned.
func SimplexLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	m, k := a.Rows, a.Cols
	if k == 0 {
		return nil, ErrNoColumns
	}
	if len(b) != m {
		return nil, fmt.Errorf("linalg: simplex LS vector length %d != rows %d", len(b), m)
	}
	if k == 1 {
		return []float64{1}, nil
	}

	mu := 1e4 * (matInfNorm(a) + Norm2(b) + 1)
	aug := NewMatrix(m+1, k)
	copy(aug.Data, a.Data)
	for j := 0; j < k; j++ {
		aug.Set(m, j, mu)
	}
	baug := make([]float64, m+1)
	copy(baug, b)
	baug[m] = mu

	beta, err := NNLS(aug, baug)
	if err != nil {
		return nil, err
	}
	s := Sum(beta)
	if s <= 0 || math.IsNaN(s) {
		// b is orthogonal to every feasible direction; fall back to the
		// uninformative uniform combination.
		for j := range beta {
			beta[j] = 1 / float64(k)
		}
		return beta, nil
	}
	Scale(1/s, beta)
	return beta, nil
}

// SimplexLeastSquaresPG solves the same problem as SimplexLeastSquares
// with an accelerated projected-gradient method (FISTA with projection
// onto the simplex). It is used as an independent cross-check of the
// active-set solution in tests and is exposed for callers who prefer a
// factorisation-free solver on large column counts.
func SimplexLeastSquaresPG(a *Matrix, b []float64, maxIter int, tol float64) ([]float64, error) {
	m, k := a.Rows, a.Cols
	if k == 0 {
		return nil, ErrNoColumns
	}
	if len(b) != m {
		return nil, fmt.Errorf("linalg: simplex LS vector length %d != rows %d", len(b), m)
	}
	if k == 1 {
		return []float64{1}, nil
	}
	if maxIter <= 0 {
		maxIter = 2000
	}
	if tol <= 0 {
		tol = 1e-12
	}

	// Lipschitz constant of the gradient: largest eigenvalue of AᵀA,
	// estimated by power iteration on the Gram matrix.
	g := a.Gram()
	lip := powerIterSym(g, 200)
	if lip <= 0 {
		beta := make([]float64, k)
		for j := range beta {
			beta[j] = 1 / float64(k)
		}
		return beta, nil
	}
	step := 1 / lip

	x := make([]float64, k)
	for j := range x {
		x[j] = 1 / float64(k)
	}
	y := make([]float64, k)
	copy(y, x)
	t := 1.0
	prev := make([]float64, k)
	ay := make([]float64, m)
	grad := make([]float64, k)
	proj := make([]float64, k)
	for iter := 0; iter < maxIter; iter++ {
		copy(prev, x)
		// grad = Aᵀ(A·y − b)
		a.MulVecInto(ay, y)
		for i := range ay {
			ay[i] -= b[i]
		}
		a.MulVecTInto(grad, ay)
		for j := range x {
			x[j] = y[j] - step*grad[j]
		}
		projectSimplexInto(x, proj)
		tNext := (1 + math.Sqrt(1+4*t*t)) / 2
		for j := range y {
			y[j] = x[j] + (t-1)/tNext*(x[j]-prev[j])
		}
		t = tNext
		var diff float64
		for j := range x {
			diff += math.Abs(x[j] - prev[j])
		}
		if diff < tol {
			break
		}
	}
	return x, nil
}

// projPool recycles the sort workspace so ProjectSimplex stays
// allocation-free inside solver iteration loops.
var projPool = sync.Pool{New: func() any {
	s := make([]float64, 0, 32)
	return &s
}}

// ProjectSimplex projects v in place onto the probability simplex
// {x : Σx = 1, x ≥ 0} using the sort-based algorithm of Held, Wolfe &
// Crowder (1974). The sort workspace comes from an internal pool;
// callers with a loop of projections can pass their own scratch via
// projectSimplexInto to skip the pool round-trip.
func ProjectSimplex(v []float64) {
	up := projPool.Get().(*[]float64)
	u := *up
	if cap(u) < len(v) {
		u = make([]float64, len(v))
	}
	projectSimplexInto(v, u[:len(v)])
	*up = u[:cap(u)]
	projPool.Put(up)
}

// projectSimplexInto is ProjectSimplex with a caller-provided scratch
// slice holding the sorted copy; scratch must have length len(v).
func projectSimplexInto(v, scratch []float64) {
	n := len(v)
	if n == 0 {
		return
	}
	u := scratch[:n]
	copy(u, v)
	// Sort descending (insertion sort is fine for the small k here, but
	// use an explicit sort for generality).
	sortDescending(u)
	var css float64
	rho, theta := -1, 0.0
	for i := 0; i < n; i++ {
		css += u[i]
		t := (css - 1) / float64(i+1)
		if u[i]-t > 0 {
			rho, theta = i, t
		}
	}
	if rho < 0 {
		// All mass below threshold; fall back to uniform.
		for i := range v {
			v[i] = 1 / float64(n)
		}
		return
	}
	_ = theta
	css = 0
	for i := 0; i <= rho; i++ {
		css += u[i]
	}
	theta = (css - 1) / float64(rho+1)
	for i := range v {
		if w := v[i] - theta; w > 0 {
			v[i] = w
		} else {
			v[i] = 0
		}
	}
}

func sortDescending(v []float64) {
	// Heapsort: no allocation, O(n log n), and we avoid importing sort
	// for a float slice with a custom order.
	n := len(v)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownMin(v, i, n)
	}
	for end := n - 1; end > 0; end-- {
		v[0], v[end] = v[end], v[0]
		siftDownMin(v, 0, end)
	}
}

// siftDownMin maintains a min-heap so the heapsort above yields a
// descending order.
func siftDownMin(v []float64, start, end int) {
	root := start
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && v[child+1] < v[child] {
			child++
		}
		if v[root] <= v[child] {
			return
		}
		v[root], v[child] = v[child], v[root]
		root = child
	}
}

// powerIterSym estimates the largest eigenvalue of a symmetric PSD
// matrix by power iteration.
func powerIterSym(g *Matrix, iters int) float64 {
	n := g.Rows
	if n == 0 {
		return 0
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
	}
	w := make([]float64, n)
	gw := make([]float64, n)
	var lambda float64
	for it := 0; it < iters; it++ {
		g.MulVecInto(w, v)
		nw := Norm2(w)
		if nw == 0 {
			return 0
		}
		for i := range w {
			w[i] /= nw
		}
		g.MulVecInto(gw, w)
		lambdaNew := Dot(w, gw)
		if it > 4 && math.Abs(lambdaNew-lambda) <= 1e-12*math.Abs(lambdaNew) {
			return lambdaNew
		}
		lambda = lambdaNew
		v, w = w, v
	}
	return lambda
}
