package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func vecAlmostEq(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !almostEq(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestMatrixSetAt(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7.5)
	m.Set(0, 0, -1)
	if got := m.At(1, 2); got != 7.5 {
		t.Errorf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.At(0, 0); got != -1 {
		t.Errorf("At(0,0) = %v, want -1", got)
	}
	if got := m.At(0, 2); got != 0 {
		t.Errorf("At(0,2) = %v, want 0", got)
	}
}

func TestMatrixBoundsPanic(t *testing.T) {
	m := NewMatrix(2, 2)
	for _, tc := range []struct{ r, c int }{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", tc.r, tc.c)
				}
			}()
			m.At(tc.r, tc.c)
		}()
	}
}

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("dims = %dx%d, want 3x2", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestMatrixFromRowsRagged(t *testing.T) {
	if _, err := MatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestMatrixFromColumns(t *testing.T) {
	m, err := MatrixFromColumns([][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("dims = %dx%d, want 3x2", m.Rows, m.Cols)
	}
	want := [][]float64{{1, 4}, {2, 5}, {3, 6}}
	for i := range want {
		for j := range want[i] {
			if m.At(i, j) != want[i][j] {
				t.Errorf("At(%d,%d) = %v, want %v", i, j, m.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatrixFromColumnsRagged(t *testing.T) {
	if _, err := MatrixFromColumns([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged columns accepted")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("T dims = %dx%d, want 3x2", mt.Rows, mt.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Errorf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	got := m.MulVec([]float64{5, 6})
	if !vecAlmostEq(got, []float64{17, 39}, 1e-12) {
		t.Errorf("MulVec = %v, want [17 39]", got)
	}
}

func TestMulVecT(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := m.MulVecT([]float64{1, 1, 1})
	if !vecAlmostEq(got, []float64{9, 12}, 1e-12) {
		t.Errorf("MulVecT = %v, want [9 12]", got)
	}
}

func TestMatMul(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul At(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestGramMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(7, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	g := a.Gram()
	g2 := a.T().Mul(a)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if !almostEq(g.At(i, j), g2.At(i, j), 1e-12) {
				t.Errorf("Gram(%d,%d) = %v, explicit %v", i, j, g.At(i, j), g2.At(i, j))
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with the original")
	}
}

func TestDotNorm(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Norm2([]float64{3, 4}); !almostEq(got, 5, 1e-12) {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %v, want 0", got)
	}
}

func TestNorm2Overflow(t *testing.T) {
	big := 1e300
	got := Norm2([]float64{big, big})
	want := big * math.Sqrt2
	if math.IsInf(got, 0) || !almostEq(got/want, 1, 1e-12) {
		t.Errorf("Norm2 overflow-guard failed: got %v want %v", got, want)
	}
}

func TestAxpyScaleSubSum(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if !vecAlmostEq(y, []float64{7, 9}, 0) {
		t.Errorf("Axpy = %v", y)
	}
	Scale(0.5, y)
	if !vecAlmostEq(y, []float64{3.5, 4.5}, 0) {
		t.Errorf("Scale = %v", y)
	}
	d := Sub([]float64{5, 5}, y)
	if !vecAlmostEq(d, []float64{1.5, 0.5}, 0) {
		t.Errorf("Sub = %v", d)
	}
	if Sum(d) != 2 {
		t.Errorf("Sum = %v, want 2", Sum(d))
	}
	if MaxAbs([]float64{-3, 2}) != 3 {
		t.Errorf("MaxAbs = %v, want 3", MaxAbs([]float64{-3, 2}))
	}
}

func TestQRSolvesExactSystem(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{2, 1}, {1, 3}})
	x, err := LeastSquares(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, []float64{1, 3}, 1e-10) {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestQROverdetermined(t *testing.T) {
	// Fit y = 2 + 3t at t = 0..4 exactly.
	rows := make([][]float64, 5)
	b := make([]float64, 5)
	for i := 0; i < 5; i++ {
		ti := float64(i)
		rows[i] = []float64{1, ti}
		b[i] = 2 + 3*ti
	}
	a, _ := MatrixFromRows(rows)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, []float64{2, 3}, 1e-9) {
		t.Errorf("x = %v, want [2 3]", x)
	}
}

func TestQRSingular(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("singular system solved without error")
	}
}

func TestQRUnderdeterminedRejected(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2, 3}})
	if _, err := QRFactor(a); err == nil {
		t.Fatal("QRFactor accepted rows < cols")
	}
}

func TestQRResidualOrthogonality(t *testing.T) {
	// For least squares, Aᵀ(Ax−b) must vanish.
	rng := rand.New(rand.NewSource(7))
	a := NewMatrix(20, 5)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	b := make([]float64, 20)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r := Sub(a.MulVec(x), b)
	g := a.MulVecT(r)
	if MaxAbs(g) > 1e-9 {
		t.Errorf("gradient not zero at LS solution: %v", g)
	}
}

func TestCholeskySolve(t *testing.T) {
	// A = LLᵀ with A symmetric positive definite.
	a, _ := MatrixFromRows([][]float64{
		{4, 2, 0},
		{2, 5, 1},
		{0, 1, 3},
	})
	x, err := SolveSPD(a, []float64{8, 13, 7})
	if err != nil {
		t.Fatal(err)
	}
	back := a.MulVec(x)
	if !vecAlmostEq(back, []float64{8, 13, 7}, 1e-10) {
		t.Errorf("A·x = %v, want [8 13 7]", back)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("Cholesky accepted an indefinite matrix")
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("Cholesky accepted a non-square matrix")
	}
}

// Property: QR least-squares solution matches the normal-equation
// solution on random well-conditioned problems.
func TestQRMatchesNormalEquationsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 8 + rng.Intn(20)
		n := 2 + rng.Intn(5)
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal boost keeps the Gram matrix well conditioned.
		for j := 0; j < n; j++ {
			a.Set(j, j, a.At(j, j)+3)
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1, err := LeastSquares(a, b)
		if err != nil {
			return false
		}
		x2, err := SolveSPD(a.Gram(), a.MulVecT(b))
		if err != nil {
			return false
		}
		return vecAlmostEq(x1, x2, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMatrixString(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if got := m.String(); got != "2x2[1 2; 3 4]" {
		t.Errorf("String() = %q", got)
	}
}
