package linalg

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorisation of an m×n matrix with m >= n.
// A = Q·R with Q orthogonal (stored implicitly as Householder vectors)
// and R upper triangular.
type QR struct {
	qr   *Matrix   // packed factors: R in the upper triangle, v below
	tau  []float64 // Householder scalars
	perm []int     // column permutation (identity unless pivoted)
}

// QRFactor computes the Householder QR factorisation of a. The input is
// not modified. Requires a.Rows >= a.Cols.
func QRFactor(a *Matrix) (*QR, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("linalg: QRFactor requires rows >= cols, got %dx%d", m, n)
	}
	w := a.Clone()
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		// Build the Householder reflector for column k, rows k..m-1.
		colNorm := 0.0
		for i := k; i < m; i++ {
			v := w.At(i, k)
			colNorm += v * v
		}
		colNorm = math.Sqrt(colNorm)
		if colNorm == 0 {
			tau[k] = 0
			continue
		}
		alpha := w.At(k, k)
		if alpha > 0 {
			colNorm = -colNorm
		}
		// v = x - colNorm*e1, normalised so v[0] = 1.
		v0 := alpha - colNorm
		w.Set(k, k, colNorm)
		for i := k + 1; i < m; i++ {
			w.Set(i, k, w.At(i, k)/v0)
		}
		tau[k] = -v0 / colNorm
		// Apply reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			s := w.At(k, j)
			for i := k + 1; i < m; i++ {
				s += w.At(i, k) * w.At(i, j)
			}
			s *= tau[k]
			w.Set(k, j, w.At(k, j)-s)
			for i := k + 1; i < m; i++ {
				w.Set(i, j, w.At(i, j)-s*w.At(i, k))
			}
		}
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return &QR{qr: w, tau: tau, perm: perm}, nil
}

// applyQT overwrites b (length m) with Qᵀ·b.
func (f *QR) applyQT(b []float64) {
	m, n := f.qr.Rows, f.qr.Cols
	for k := 0; k < n; k++ {
		if f.tau[k] == 0 {
			continue
		}
		s := b[k]
		for i := k + 1; i < m; i++ {
			s += f.qr.At(i, k) * b[i]
		}
		s *= f.tau[k]
		b[k] -= s
		for i := k + 1; i < m; i++ {
			b[i] -= s * f.qr.At(i, k)
		}
	}
}

// Solve returns the least-squares solution x minimising ‖A·x − b‖₂.
// b must have length A.Rows. Returns ErrSingular if R has a zero (to
// working precision) diagonal entry.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows, f.qr.Cols
	if len(b) != m {
		return nil, fmt.Errorf("linalg: QR.Solve vector length %d != rows %d", len(b), m)
	}
	qtb := make([]float64, m)
	copy(qtb, b)
	f.applyQT(qtb)
	x := make([]float64, n)
	// Back substitution on R.
	eps := f.maxDiag() * 1e-13
	for i := n - 1; i >= 0; i-- {
		s := qtb[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		d := f.qr.At(i, i)
		if math.Abs(d) <= eps {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

func (f *QR) maxDiag() float64 {
	var mx float64
	for i := 0; i < f.qr.Cols; i++ {
		if a := math.Abs(f.qr.At(i, i)); a > mx {
			mx = a
		}
	}
	if mx == 0 {
		return 1
	}
	return mx
}

// LeastSquares solves min ‖A·x − b‖₂ via Householder QR.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	f, err := QRFactor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Cholesky computes the lower-triangular L with A = L·Lᵀ for a symmetric
// positive-definite matrix. Returns ErrSingular when A is not (numerically)
// positive definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 {
			return nil, ErrSingular
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return l, nil
}

// SolveCholesky solves A·x = b given the Cholesky factor L of A.
func SolveCholesky(l *Matrix, b []float64) ([]float64, error) {
	n := l.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: SolveCholesky vector length %d != order %d", len(b), n)
	}
	// Forward solve L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * y[j]
		}
		d := l.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		y[i] = s / d
	}
	// Back solve Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// SolveSPD solves A·x = b for symmetric positive-definite A.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return SolveCholesky(l, b)
}
