package geoalign

import (
	"math"
	"testing"
)

// These are regression tests for the Crosswalk lazy-CSR cache: every
// read accessor finalises the COO buffer into a CSR, and a subsequent
// Add must invalidate that cache (rebuilding from the CSR when the
// crosswalk was created already-finalised, e.g. by FromDense).

// TestCrosswalkAddInvalidatesEveryAccessor reads through each accessor
// that lazily builds the CSR, Adds afterwards, and checks the accessor
// reflects the new entry rather than a stale cache.
func TestCrosswalkAddInvalidatesEveryAccessor(t *testing.T) {
	reads := map[string]func(c *Crosswalk) float64{
		"At":           func(c *Crosswalk) float64 { return c.At(0, 0) },
		"SourceTotals": func(c *Crosswalk) float64 { return c.SourceTotals()[0] },
		"TargetTotals": func(c *Crosswalk) float64 { return c.TargetTotals()[1] },
		"NonZeros":     func(c *Crosswalk) float64 { return float64(c.NonZeros()) },
	}
	for name, read := range reads {
		c := NewCrosswalk(2, 2)
		if err := c.Add(0, 0, 5); err != nil {
			t.Fatal(err)
		}
		read(c) // builds and caches the CSR
		if err := c.Add(1, 1, 7); err != nil {
			t.Fatalf("%s: Add after read: %v", name, err)
		}
		if got := c.At(1, 1); got != 7 {
			t.Errorf("%s: stale cache, At(1,1) = %v, want 7", name, got)
		}
		if got := c.At(0, 0); got != 5 {
			t.Errorf("%s: reopened crosswalk lost entry, At(0,0) = %v, want 5", name, got)
		}
		if got := c.NonZeros(); got != 2 {
			t.Errorf("%s: NonZeros = %d, want 2", name, got)
		}
	}
}

// TestCrosswalkFromDenseThenAdd covers the born-finalised path: a
// FromDense crosswalk has no COO buffer, so Add must rebuild one from
// the CSR without losing or reordering entries.
func TestCrosswalkFromDenseThenAdd(t *testing.T) {
	c, err := FromDense([][]float64{
		{1, 0, 2},
		{0, 0, 0},
		{3, 4, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(1, 1, 9); err != nil {
		t.Fatalf("Add on FromDense crosswalk: %v", err)
	}
	// Accumulate onto an existing cell too.
	if err := c.Add(0, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	want := [][]float64{
		{1.5, 0, 2},
		{0, 9, 0},
		{3, 4, 0},
	}
	for i := range want {
		for j := range want[i] {
			if got := c.At(i, j); got != want[i][j] {
				t.Errorf("At(%d,%d) = %v, want %v", i, j, got, want[i][j])
			}
		}
	}
	if got := c.NonZeros(); got != 5 {
		t.Errorf("NonZeros = %d, want 5", got)
	}
}

// TestCrosswalkAddAfterReadAlignConsistent checks the property end to
// end: a crosswalk built incrementally with reads interleaved must
// align identically to one built in a single pass.
func TestCrosswalkAddAfterReadAlignConsistent(t *testing.T) {
	entries := []struct {
		i, j int
		v    float64
	}{
		{0, 0, 2}, {0, 1, 1}, {1, 1, 4}, {2, 0, 3}, {2, 1, 3}, {1, 0, 1},
	}
	interleaved := NewCrosswalk(3, 2)
	clean := NewCrosswalk(3, 2)
	for n, e := range entries {
		if err := clean.Add(e.i, e.j, e.v); err != nil {
			t.Fatal(err)
		}
		if n == 2 || n == 4 {
			interleaved.SourceTotals() // force a finalise mid-build
		}
		if err := interleaved.Add(e.i, e.j, e.v); err != nil {
			t.Fatal(err)
		}
	}
	objective := []float64{10, 20, 30}
	a, err := Align(objective, []Reference{{Name: "r", Crosswalk: interleaved}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Align(objective, []Reference{{Name: "r", Crosswalk: clean}})
	if err != nil {
		t.Fatal(err)
	}
	for j := range b.Target {
		if math.Abs(a.Target[j]-b.Target[j]) > 1e-15 {
			t.Errorf("target[%d]: interleaved %v != clean %v", j, a.Target[j], b.Target[j])
		}
	}
}

// TestEstimatedCrosswalkDetached: Adding to the crosswalk returned by
// EstimatedCrosswalk must not mutate the Result it came from.
func TestEstimatedCrosswalkDetached(t *testing.T) {
	xw := NewCrosswalk(2, 2)
	for _, e := range []struct {
		i, j int
		v    float64
	}{{0, 0, 1}, {0, 1, 1}, {1, 0, 2}} {
		if err := xw.Add(e.i, e.j, e.v); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Align([]float64{6, 8}, []Reference{{Name: "r", Crosswalk: xw}})
	if err != nil {
		t.Fatal(err)
	}
	est := res.EstimatedCrosswalk()
	before := est.At(0, 0)
	if err := est.Add(0, 0, 100); err != nil {
		t.Fatalf("Add on estimated crosswalk: %v", err)
	}
	if got := est.At(0, 0); got != before+100 {
		t.Errorf("estimated crosswalk At(0,0) = %v, want %v", got, before+100)
	}
	// A fresh snapshot from the Result must be untouched.
	if got := res.EstimatedCrosswalk().At(0, 0); got != before {
		t.Errorf("Result mutated through EstimatedCrosswalk: At(0,0) = %v, want %v", got, before)
	}
}
